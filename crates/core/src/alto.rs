//! ALTO: adaptive linearized tensor order — a mode-agnostic MTTKRP
//! substrate over bit-interleaved linearized indices.
//!
//! The CSF-family substrates ([`crate::mttkrp`], [`crate::dimtree`])
//! compile the tensor into per-root-mode fiber hierarchies whose
//! pointer-chasing traversals resist vectorization and whose value
//! arrays must be replicated (or re-sorted) per mode. Following
//! Laukemann et al. (PAPERS.md, arXiv:2403.06348), an [`AltoTensor`]
//! instead stores each nonzero **once**, as a single `u64` *linearized*
//! index that bit-interleaves the coordinates of every mode:
//!
//! * each mode `m` owns a fixed set of bit positions, assigned
//!   round-robin from the least-significant bit (the per-mode **masks**);
//!   a mode's coordinate is recovered with one parallel-bit-extract
//!   (`pext`, or its bit-identical software fallback) per nonzero —
//!   mode-agnostic delinearization instead of per-mode fiber pointers;
//! * nonzeros are sorted by linearized index, which orders them along a
//!   Morton-style space-filling curve: a contiguous range of nonzeros is
//!   confined to a compact subregion of the tensor in *every* mode at
//!   once, the locality property the block partition exploits;
//! * the sorted range is **recursively bisected** into nnz-balanced
//!   blocks (frozen at build, like every parallel schedule in this
//!   codebase), and for each block and each mode the interval of output
//!   rows it can touch is precomputed from the curve geometry. A block
//!   whose interval is disjoint from every other block's scatters
//!   **lock-free** directly into the output; overlapping blocks
//!   accumulate into per-block privatized buffers that are merged
//!   serially in block order — the same deterministic privatize-and-merge
//!   discipline as [`crate::mttkrp::three_mode_fiber_privatized`], so
//!   results are bit-identical across 1/2/4-thread pools for a fixed
//!   build.
//!
//! The delinearize+accumulate inner loop runs through the
//! [`splinalg::simd`] kernels: runtime-dispatched AVX-512 / AVX2 /
//! scalar paths whose fused multiply-adds round identically, so the
//! *same bits* come out of every path (the conformance suite asserts
//! `max_abs_diff == 0.0` across kernel paths and thread pools).
//!
//! **Memory and allocation.** Per-block Hadamard scratch and the
//! privatized partials live in one flat arena sized when the rank is
//! first seen ([`AltoScratch`]); steady-state MTTKRP calls perform zero
//! heap allocation (`tests/alloc_hot_path.rs` enforces it). The whole
//! structure is `16 * nnz` bytes plus block metadata — one copy of the
//! tensor serving every mode, against `nmodes` copies for per-mode CSF.

use crate::config::Factorizer;
use crate::driver::{MttkrpInfo, TensorSource};
use crate::error::AoAdmmError;
use crate::mttkrp_plan::PlanStrategy;
use crate::sparsity::{SparsityDecision, Structure};
use parking_lot::Mutex;
use rayon::prelude::*;
use splinalg::{simd, vecops, DMat, SimdLevel};
use sptensor::CooTensor;
use std::marker::PhantomData;
use std::ops::Range;

/// Number of bits needed to store coordinates `0 .. d-1`.
fn bits_for(d: usize) -> u32 {
    if d <= 1 {
        0
    } else {
        u64::BITS - ((d - 1) as u64).leading_zeros()
    }
}

/// Total linearized-index bits for a shape.
pub fn required_bits(dims: &[usize]) -> u32 {
    dims.iter().map(|&d| bits_for(d)).sum()
}

/// Per-mode interleaved bit assignment: `masks[m]` selects mode `m`'s
/// bits out of a linearized index; `spread[m]` lists those positions
/// LSB-first (position of coordinate bit `k` is `spread[m][k]`).
fn build_masks(dims: &[usize]) -> Result<(Vec<u64>, Vec<Vec<u8>>), AoAdmmError> {
    let total = required_bits(dims);
    if total > 64 {
        return Err(AoAdmmError::Config(format!(
            "ALTO linearized index needs {total} bits for shape {dims:?}; 64 is the limit"
        )));
    }
    let bits: Vec<u32> = dims.iter().map(|&d| bits_for(d)).collect();
    let mut masks = vec![0u64; dims.len()];
    let mut spread: Vec<Vec<u8>> = bits
        .iter()
        .map(|&b| Vec::with_capacity(b as usize))
        .collect();
    let mut pos = 0u8;
    // Round-robin from the LSB: bit k of every mode sits below bit k+1 of
    // every mode, so a contiguous linearized range is compact in all
    // modes at once (Morton-style ordering over ragged dims).
    for round in 0..bits.iter().copied().max().unwrap_or(0) {
        for (m, &b) in bits.iter().enumerate() {
            if round < b {
                masks[m] |= 1u64 << pos;
                spread[m].push(pos);
                pos += 1;
            }
        }
    }
    Ok((masks, spread))
}

/// Scatter the (contiguous) bits of `coord` to the positions listed in
/// `spread` — the encode-side inverse of [`simd::extract_bits`].
#[inline]
fn spread_bits(coord: u64, spread: &[u8]) -> u64 {
    let mut out = 0u64;
    let mut c = coord;
    while c != 0 {
        let k = c.trailing_zeros() as usize;
        out |= 1u64 << spread[k];
        c &= c - 1;
    }
    out
}

/// Recursively bisect `0..nnz` at the nonzero midpoint until every block
/// holds at most `ceil(nnz / target)` nonzeros. Blocks are contiguous,
/// nonempty, and cover the range exactly once; the list is frozen at
/// build, so the parallel schedule (and therefore the merge order) does
/// not depend on the executing pool.
fn partition_blocks(nnz: usize, target: usize) -> Vec<Range<usize>> {
    fn split(lo: usize, hi: usize, max_len: usize, out: &mut Vec<Range<usize>>) {
        if hi - lo <= max_len || hi - lo < 2 {
            out.push(lo..hi);
        } else {
            let mid = lo + (hi - lo) / 2;
            split(lo, mid, max_len, out);
            split(mid, hi, max_len, out);
        }
    }
    let mut blocks = Vec::new();
    if nnz > 0 {
        split(0, nnz, nnz.div_ceil(target.max(1)), &mut blocks);
    }
    blocks
}

/// Rank-sized scratch arena: one Hadamard-product row per block plus one
/// privatized output partial per conflicting (mode, block) pair. Laid
/// out once per rank; steady-state calls reuse it without touching the
/// allocator.
#[derive(Debug, Default)]
struct AltoScratch {
    /// Rank the arena is currently laid out for (0 = not yet sized).
    rank: usize,
    data: Vec<f64>,
    /// Per-block offset of the rank-length Hadamard scratch row.
    prod_off: Vec<usize>,
    /// `[mode][block]` offset of the privatized partial
    /// (`interval_len * rank` doubles); `usize::MAX` for conflict-free
    /// blocks, which need none.
    priv_off: Vec<Vec<usize>>,
}

/// A tensor compiled into the ALTO linearized format, serving MTTKRP for
/// every mode from a single sorted copy of the nonzeros. See the module
/// docs for the format and execution model.
pub struct AltoTensor {
    dims: Vec<usize>,
    /// Per-mode bit masks over the linearized index.
    masks: Vec<u64>,
    /// Per-mode bit positions, LSB-first (the encode table).
    spread: Vec<Vec<u8>>,
    /// Sorted linearized indices, one per nonzero.
    lin: Vec<u64>,
    /// Values, permuted alongside `lin`.
    vals: Vec<f64>,
    norm_sq: f64,
    /// Frozen nnz-balanced blocks (ranges into `lin`/`vals`).
    blocks: Vec<Range<usize>>,
    /// `[mode][block]` output-row interval `[lo, hi)` the block touches.
    intervals: Vec<Vec<(u32, u32)>>,
    /// `[mode][block]` true when the block's interval is disjoint from
    /// every other block's — it may scatter lock-free.
    conflict_free: Vec<Vec<bool>>,
    /// Kernel path selected at build ([`SimdLevel::detect`]).
    level: SimdLevel,
    // Interior mutability bridges the arena to the &self TensorSource
    // interface; the outer loop serves modes sequentially, so the lock
    // is uncontended (same pattern as the dimension-tree plan).
    scratch: Mutex<AltoScratch>,
}

impl std::fmt::Debug for AltoTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AltoTensor")
            .field("dims", &self.dims)
            .field("nnz", &self.lin.len())
            .field("bits", &required_bits(&self.dims))
            .field("blocks", &self.blocks.len())
            .field("level", &self.level)
            .finish()
    }
}

impl AltoTensor {
    /// True when `dims` linearizes into the 64-bit index ALTO uses.
    pub fn encodable(dims: &[usize]) -> bool {
        dims.len() >= 2 && required_bits(dims) <= 64
    }

    /// Compile `tensor` into the ALTO format. Rejects shapes whose
    /// linearized index exceeds 64 bits and tensors with fewer than two
    /// modes.
    pub fn build(tensor: &CooTensor) -> Result<Self, AoAdmmError> {
        let dims = tensor.dims().to_vec();
        if dims.len() < 2 {
            return Err(AoAdmmError::Config(
                "ALTO needs a tensor with at least 2 modes".into(),
            ));
        }
        let (masks, spread) = build_masks(&dims)?;
        let n = tensor.nnz();
        let mut lin = vec![0u64; n];
        for (m, sp) in spread.iter().enumerate() {
            let inds = tensor.mode_inds(m);
            for (l, &i) in lin.iter_mut().zip(inds) {
                *l |= spread_bits(u64::from(i), sp);
            }
        }
        // Deterministic sort: ties (duplicate coordinates) keep input
        // order, so the accumulation order is a pure function of the
        // input tensor.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_by_key(|&i| lin[i as usize]);
        let vals_src = tensor.values();
        let sorted_lin: Vec<u64> = perm.iter().map(|&i| lin[i as usize]).collect();
        let vals: Vec<f64> = perm.iter().map(|&i| vals_src[i as usize]).collect();
        let target = rayon::current_num_threads().max(1) * 8;
        let blocks = partition_blocks(n, target);
        let (intervals, conflict_free) = block_geometry(&sorted_lin, &masks, &blocks);
        Ok(AltoTensor {
            dims,
            masks,
            spread,
            lin: sorted_lin,
            vals,
            norm_sq: tensor.norm_sq(),
            blocks,
            intervals,
            conflict_free,
            level: SimdLevel::detect(),
            scratch: Mutex::new(AltoScratch::default()),
        })
    }

    /// Mode lengths.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.lin.len()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f64 {
        self.norm_sq
    }

    /// Per-mode extraction masks over the linearized index.
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }

    /// Sorted linearized indices.
    pub fn linearized(&self) -> &[u64] {
        &self.lin
    }

    /// Values, in linearized order.
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// The frozen nnz-balanced block partition.
    pub fn blocks(&self) -> &[Range<usize>] {
        &self.blocks
    }

    /// Output-row interval `[lo, hi)` block `b` touches in `mode`.
    pub fn block_interval(&self, mode: usize, b: usize) -> (u32, u32) {
        self.intervals[mode][b]
    }

    /// Whether block `b` scatters lock-free in `mode`.
    pub fn block_conflict_free(&self, mode: usize, b: usize) -> bool {
        self.conflict_free[mode][b]
    }

    /// Kernel path selected at build.
    pub fn simd_level(&self) -> SimdLevel {
        self.level
    }

    /// Resident bytes of the nonzero storage and block metadata
    /// (excludes the rank-dependent scratch arena).
    pub fn memory_bytes(&self) -> usize {
        self.lin.capacity() * 8
            + self.vals.capacity() * 8
            + self.blocks.capacity() * std::mem::size_of::<Range<usize>>()
            + self
                .intervals
                .iter()
                .map(|v| v.capacity() * 8)
                .sum::<usize>()
            + self
                .conflict_free
                .iter()
                .map(|v| v.capacity())
                .sum::<usize>()
    }

    /// Bit-interleave one coordinate tuple into its linearized index.
    pub fn encode_coords(&self, coords: &[sptensor::Idx]) -> u64 {
        debug_assert_eq!(coords.len(), self.dims.len());
        coords
            .iter()
            .zip(&self.spread)
            .map(|(&c, sp)| spread_bits(u64::from(c), sp))
            .fold(0u64, |acc, x| acc | x)
    }

    /// Recover the coordinate tuple from a linearized index.
    pub fn decode_coords(&self, lin: u64, out: &mut [sptensor::Idx]) {
        debug_assert_eq!(out.len(), self.dims.len());
        for (o, &mask) in out.iter_mut().zip(&self.masks) {
            *o = simd::extract_bits(lin, mask) as sptensor::Idx;
        }
    }

    /// Grow mode lengths (streaming growth). When the new lengths still
    /// fit the interleaved bit budget, only the logical shape changes;
    /// otherwise the nonzeros are re-encoded, re-sorted and
    /// re-partitioned under a wider mask set (a growth event, allowed to
    /// allocate — steady-state MTTKRP stays allocation-free).
    pub fn grow_dims(&mut self, new_dims: &[usize]) -> Result<(), AoAdmmError> {
        if new_dims.len() != self.dims.len() {
            return Err(AoAdmmError::Config(format!(
                "grow_dims: {} modes given, tensor has {}",
                new_dims.len(),
                self.dims.len()
            )));
        }
        for (m, (&old, &new)) in self.dims.iter().zip(new_dims).enumerate() {
            if new < old {
                return Err(AoAdmmError::Config(format!(
                    "grow_dims: mode {m} shrinks from {old} to {new}"
                )));
            }
        }
        let fits = new_dims
            .iter()
            .zip(&self.spread)
            .all(|(&d, sp)| bits_for(d) as usize <= sp.len());
        if fits {
            self.dims = new_dims.to_vec();
            return Ok(());
        }
        let (masks, spread) = build_masks(new_dims)?;
        // Re-encode through the old masks, then rebuild the layout.
        let n = self.lin.len();
        let nmodes = self.dims.len();
        let mut relin = vec![0u64; n];
        for (r, &l) in relin.iter_mut().zip(&self.lin) {
            for m in 0..nmodes {
                let c = simd::extract_bits(l, self.masks[m]);
                *r |= spread_bits(c, &spread[m]);
            }
        }
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_by_key(|&i| relin[i as usize]);
        let lin: Vec<u64> = perm.iter().map(|&i| relin[i as usize]).collect();
        let vals: Vec<f64> = perm.iter().map(|&i| self.vals[i as usize]).collect();
        let target = rayon::current_num_threads().max(1) * 8;
        let blocks = partition_blocks(n, target);
        let (intervals, conflict_free) = block_geometry(&lin, &masks, &blocks);
        self.dims = new_dims.to_vec();
        self.masks = masks;
        self.spread = spread;
        self.lin = lin;
        self.vals = vals;
        self.blocks = blocks;
        self.intervals = intervals;
        self.conflict_free = conflict_free;
        // Scratch offsets are stale; force a relayout on next use.
        let mut s = self.scratch.lock();
        s.rank = 0;
        Ok(())
    }

    /// MTTKRP for `mode` with every factor read dense, through the
    /// kernel path selected at build.
    pub fn mttkrp_into(
        &self,
        mode: usize,
        factors: &[DMat],
        out: &mut DMat,
    ) -> Result<(), AoAdmmError> {
        self.mttkrp_with_level(mode, factors, out, self.level)
    }

    /// MTTKRP for `mode` through an explicit kernel path — the hook the
    /// conformance suite uses to prove AVX-512 / AVX2 / scalar paths
    /// produce identical bits. A level the CPU cannot run degrades to
    /// scalar (semantically invisible under the bit-exactness contract).
    pub fn mttkrp_with_level(
        &self,
        mode: usize,
        factors: &[DMat],
        out: &mut DMat,
        level: SimdLevel,
    ) -> Result<(), AoAdmmError> {
        self.validate(mode, factors, out)?;
        let rank = out.ncols();
        let mut guard = self.scratch.lock();
        let scratch = &mut *guard;
        self.ensure_scratch(scratch, rank);
        out.fill(0.0);
        if self.blocks.is_empty() {
            return Ok(());
        }
        let cfree = &self.conflict_free[mode];
        let ivs = &self.intervals[mode];
        {
            let out_w = SliceWriter::new(out.as_mut_slice());
            let scr_w = SliceWriter::new(&mut scratch.data);
            let prod_off = &scratch.prod_off;
            let priv_off = &scratch.priv_off[mode];
            self.blocks.par_iter().enumerate().for_each(|(b, blk)| {
                // SAFETY: prod regions are disjoint per block; privatized
                // regions are disjoint per (mode, block); a conflict-free
                // block's output rows are touched by no other block.
                let prod = unsafe { scr_w.slice_mut(prod_off[b], rank) };
                if cfree[b] {
                    self.accumulate_block(level, blk.clone(), mode, factors, prod, &out_w, 0, rank);
                } else {
                    let (lo, hi) = ivs[b];
                    let len = (hi - lo) as usize * rank;
                    let partial = unsafe { scr_w.slice_mut(priv_off[b], len) };
                    vecops::fill(partial, 0.0);
                    let pw = SliceWriter::new(partial);
                    self.accumulate_block(
                        level,
                        blk.clone(),
                        mode,
                        factors,
                        prod,
                        &pw,
                        lo as usize,
                        rank,
                    );
                }
            });
        }
        // Deterministic merge: conflicting partials fold into the output
        // in frozen block order, independent of the executing pool.
        let out_s = out.as_mut_slice();
        for b in 0..self.blocks.len() {
            if cfree[b] {
                continue;
            }
            let (lo, hi) = ivs[b];
            let off = scratch.priv_off[mode][b];
            for r in lo as usize..hi as usize {
                let src = &scratch.data[off + (r - lo as usize) * rank..][..rank];
                simd::add_assign(level, &mut out_s[r * rank..(r + 1) * rank], src);
            }
        }
        Ok(())
    }

    // ---- internals ---------------------------------------------------

    fn validate(&self, mode: usize, factors: &[DMat], out: &DMat) -> Result<(), AoAdmmError> {
        let nmodes = self.dims.len();
        if factors.len() != nmodes || mode >= nmodes {
            return Err(AoAdmmError::Config(format!(
                "{} factors / mode {mode} for a {nmodes}-mode ALTO tensor",
                factors.len()
            )));
        }
        let f = out.ncols();
        if f == 0 || out.nrows() != self.dims[mode] {
            return Err(AoAdmmError::Config(format!(
                "output is {}x{f}; mode {mode} has length {}",
                out.nrows(),
                self.dims[mode]
            )));
        }
        for (m, fac) in factors.iter().enumerate() {
            if fac.ncols() != f || (m != mode && fac.nrows() != self.dims[m]) {
                return Err(AoAdmmError::Config(format!(
                    "factor {m} is {}x{}; expected {}x{f}",
                    fac.nrows(),
                    fac.ncols(),
                    self.dims[m]
                )));
            }
        }
        Ok(())
    }

    /// Lay the arena out for `rank`: one Hadamard row per block, one
    /// privatized partial per conflicting (mode, block). Only a rank
    /// change relayouts (and only growth reallocates).
    fn ensure_scratch(&self, scratch: &mut AltoScratch, rank: usize) {
        if scratch.rank == rank {
            return;
        }
        let nmodes = self.dims.len();
        let mut off = 0usize;
        scratch.prod_off.clear();
        for _ in &self.blocks {
            scratch.prod_off.push(off);
            off += rank;
        }
        scratch.priv_off.clear();
        for m in 0..nmodes {
            let mut offs = Vec::with_capacity(self.blocks.len());
            for b in 0..self.blocks.len() {
                if self.conflict_free[m][b] {
                    offs.push(usize::MAX);
                } else {
                    let (lo, hi) = self.intervals[m][b];
                    offs.push(off);
                    off += (hi - lo) as usize * rank;
                }
            }
            scratch.priv_off.push(offs);
        }
        scratch.data.clear();
        scratch.data.resize(off, 0.0);
        scratch.rank = rank;
    }

    /// Accumulate one block's nonzeros into `dst`, whose row `r` of the
    /// output lives at offset `(r - row_base) * rank`.
    ///
    /// Dispatch happens once per *block*, not per vector op: the whole
    /// nonzero loop is monomorphized under `target_feature` for the AVX
    /// tiers so LLVM fuses the decode + rank-vector arithmetic into wide
    /// FMA code, while the scalar instantiation compiles the identical
    /// body without vector features. Every path runs the same
    /// per-element operation sequence (plain multiplies along the mode
    /// chain, one `f64::mul_add` fold into the output row), which is
    /// what keeps the three instantiations bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn accumulate_block(
        &self,
        level: SimdLevel,
        range: Range<usize>,
        mode: usize,
        factors: &[DMat],
        prod: &mut [f64],
        dst: &SliceWriter,
        row_base: usize,
        rank: usize,
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            let eff = level.min(SimdLevel::best_available());
            // SAFETY: `eff` was just capped to what this CPU supports.
            match eff {
                SimdLevel::Avx512 => {
                    return unsafe {
                        self.accumulate_block_avx512(
                            range, mode, factors, prod, dst, row_base, rank,
                        )
                    };
                }
                SimdLevel::Avx2 => {
                    return unsafe {
                        self.accumulate_block_avx2(range, mode, factors, prod, dst, row_base, rank)
                    };
                }
                SimdLevel::Scalar => {}
            }
        }
        let _ = level;
        self.accumulate_block_body(range, mode, factors, prod, dst, row_base, rank);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn accumulate_block_avx2(
        &self,
        range: Range<usize>,
        mode: usize,
        factors: &[DMat],
        prod: &mut [f64],
        dst: &SliceWriter,
        row_base: usize,
        rank: usize,
    ) {
        self.accumulate_block_body(range, mode, factors, prod, dst, row_base, rank);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn accumulate_block_avx512(
        &self,
        range: Range<usize>,
        mode: usize,
        factors: &[DMat],
        prod: &mut [f64],
        dst: &SliceWriter,
        row_base: usize,
        rank: usize,
    ) {
        self.accumulate_block_body(range, mode, factors, prod, dst, row_base, rank);
    }

    /// The one shared kernel body: per nonzero, decode the target row,
    /// then fold `val * (Hadamard of non-target rows in ascending mode
    /// order)` into it, k-major so each output element streams through
    /// registers exactly once. Arities 2-4 are specialized (no scratch
    /// traffic at all); 5+ modes run the chain through `prod`.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn accumulate_block_body(
        &self,
        range: Range<usize>,
        mode: usize,
        factors: &[DMat],
        prod: &mut [f64],
        dst: &SliceWriter,
        row_base: usize,
        rank: usize,
    ) {
        let nmodes = self.dims.len();
        let tmask = self.masks[mode];
        match nmodes {
            2 => {
                let other = 1 - mode;
                let omask = self.masks[other];
                let fac = &factors[other];
                for n in range {
                    let l = self.lin[n];
                    let r = simd::extract_bits(l, tmask) as usize;
                    // SAFETY: r lies in this block's interval; see par loop.
                    let out_row = unsafe { dst.slice_mut((r - row_base) * rank, rank) };
                    let row = fac.row(simd::extract_bits(l, omask) as usize);
                    let v = self.vals[n];
                    for (o, &x) in out_row.iter_mut().zip(row) {
                        *o = v.mul_add(x, *o);
                    }
                }
            }
            3 => {
                let (ma, mb) = match mode {
                    0 => (1, 2),
                    1 => (0, 2),
                    _ => (0, 1),
                };
                let (amask, bmask) = (self.masks[ma], self.masks[mb]);
                let (fa, fb) = (&factors[ma], &factors[mb]);
                for n in range {
                    let l = self.lin[n];
                    let r = simd::extract_bits(l, tmask) as usize;
                    // SAFETY: r lies in this block's interval; see par loop.
                    let out_row = unsafe { dst.slice_mut((r - row_base) * rank, rank) };
                    let a = fa.row(simd::extract_bits(l, amask) as usize);
                    let b = fb.row(simd::extract_bits(l, bmask) as usize);
                    let v = self.vals[n];
                    for ((o, &ak), &bk) in out_row.iter_mut().zip(a).zip(b) {
                        *o = (v * ak).mul_add(bk, *o);
                    }
                }
            }
            4 => {
                let mut others = [0usize; 3];
                let mut w = 0;
                for m in 0..4 {
                    if m != mode {
                        others[w] = m;
                        w += 1;
                    }
                }
                let [ma, mb, mc] = others;
                let (amask, bmask, cmask) = (self.masks[ma], self.masks[mb], self.masks[mc]);
                let (fa, fb, fc) = (&factors[ma], &factors[mb], &factors[mc]);
                for n in range {
                    let l = self.lin[n];
                    let r = simd::extract_bits(l, tmask) as usize;
                    // SAFETY: r lies in this block's interval; see par loop.
                    let out_row = unsafe { dst.slice_mut((r - row_base) * rank, rank) };
                    let a = fa.row(simd::extract_bits(l, amask) as usize);
                    let b = fb.row(simd::extract_bits(l, bmask) as usize);
                    let c = fc.row(simd::extract_bits(l, cmask) as usize);
                    let v = self.vals[n];
                    for (((o, &ak), &bk), &ck) in out_row.iter_mut().zip(a).zip(b).zip(c) {
                        *o = (v * ak * bk).mul_add(ck, *o);
                    }
                }
            }
            _ => {
                let last = if mode == nmodes - 1 {
                    nmodes - 2
                } else {
                    nmodes - 1
                };
                for n in range {
                    let l = self.lin[n];
                    let r = simd::extract_bits(l, tmask) as usize;
                    // SAFETY: r lies in this block's interval; see par loop.
                    let out_row = unsafe { dst.slice_mut((r - row_base) * rank, rank) };
                    let mut first = true;
                    for (m, fac) in factors.iter().enumerate() {
                        if m == mode {
                            continue;
                        }
                        let row = fac.row(simd::extract_bits(l, self.masks[m]) as usize);
                        if m == last {
                            for ((o, &p), &x) in out_row.iter_mut().zip(&*prod).zip(row) {
                                *o = p.mul_add(x, *o);
                            }
                        } else if first {
                            let v = self.vals[n];
                            for (p, &x) in prod.iter_mut().zip(row) {
                                *p = v * x;
                            }
                            first = false;
                        } else {
                            for (p, &x) in prod.iter_mut().zip(row) {
                                *p *= x;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Per-mode, per-block output-row intervals and the conflict-freedom
/// classification (disjoint from every other block's interval).
#[allow(clippy::type_complexity)]
fn block_geometry(
    lin: &[u64],
    masks: &[u64],
    blocks: &[Range<usize>],
) -> (Vec<Vec<(u32, u32)>>, Vec<Vec<bool>>) {
    let nmodes = masks.len();
    // Block-major scan (parallel at build time), then transpose.
    let per_block: Vec<Vec<(u32, u32)>> = blocks
        .par_iter()
        .map(|blk| {
            let mut iv = vec![(u32::MAX, 0u32); nmodes];
            for &l in &lin[blk.clone()] {
                for (m, &mask) in masks.iter().enumerate() {
                    let c = simd::extract_bits(l, mask) as u32;
                    iv[m].0 = iv[m].0.min(c);
                    iv[m].1 = iv[m].1.max(c + 1);
                }
            }
            iv
        })
        .collect();
    let mut intervals = vec![Vec::with_capacity(blocks.len()); nmodes];
    for iv in &per_block {
        for (m, &x) in iv.iter().enumerate() {
            intervals[m].push(x);
        }
    }
    let conflict_free = intervals
        .iter()
        .map(|ivs| {
            (0..ivs.len())
                .map(|b| {
                    let (lo, hi) = ivs[b];
                    ivs.iter()
                        .enumerate()
                        .all(|(o, &(olo, ohi))| o == b || ohi <= lo || hi <= olo)
                })
                .collect()
        })
        .collect();
    (intervals, conflict_free)
}

impl TensorSource for AltoTensor {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn nnz(&self) -> usize {
        self.lin.len()
    }

    fn norm_sq(&self) -> f64 {
        self.norm_sq
    }

    fn mttkrp(
        &self,
        mode: usize,
        factors: &[DMat],
        _cfg: &Factorizer,
        out: &mut DMat,
    ) -> Result<MttkrpInfo, AoAdmmError> {
        // ALTO reads every factor row-wise per nonzero; a sparse leaf
        // snapshot has no leaf-sweep to accelerate, so the dynamic
        // sparsity policy does not apply and the decision reports dense.
        self.mttkrp_into(mode, factors, out)?;
        Ok(MttkrpInfo {
            decision: SparsityDecision {
                density: 1.0,
                structure: Structure::Dense,
            },
            strategy: Some(PlanStrategy::Alto),
            slab_hits: 0,
            slab_misses: 0,
        })
    }
}

/// Raw-pointer view of a flat buffer whose sub-slices are written
/// concurrently at *provably disjoint* offsets (the ALTO analogue of the
/// dimension-tree slice writer; see the SAFETY comments at each use).
struct SliceWriter<'a> {
    data: *mut f64,
    len: usize,
    _marker: PhantomData<&'a mut f64>,
}

// SAFETY: every use hands disjoint ranges to different tasks — block
// scratch regions are indexed by block position, and direct scatter is
// restricted to conflict-free blocks whose row intervals are disjoint.
unsafe impl Send for SliceWriter<'_> {}
unsafe impl Sync for SliceWriter<'_> {}

impl<'a> SliceWriter<'a> {
    fn new(s: &'a mut [f64]) -> Self {
        SliceWriter {
            data: s.as_mut_ptr(),
            len: s.len(),
            _marker: PhantomData,
        }
    }

    /// # Safety
    /// `start + len <= self.len` and no other thread may hold a
    /// reference overlapping `[start, start + len)`.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [f64] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.data.add(start), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::mttkrp_reference;
    use sptensor::gen;

    fn random_factors(dims: &[usize], f: usize, seed: u64) -> Vec<DMat> {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        dims.iter()
            .map(|&d| DMat::random(d, f, -1.0, 1.0, &mut rng))
            .collect()
    }

    fn assert_close(a: &DMat, b: &DMat, what: &str) {
        let d = a.max_abs_diff(b);
        assert!(d < 1e-9, "{what}: max abs diff {d}");
    }

    #[test]
    fn masks_partition_the_linearized_bits() {
        let dims = [12usize, 9, 300, 2];
        let (masks, spread) = build_masks(&dims).unwrap();
        let total: u32 = required_bits(&dims);
        let union = masks.iter().fold(0u64, |a, &m| a | m);
        assert_eq!(union.count_ones(), total);
        for (i, &a) in masks.iter().enumerate() {
            assert_eq!(a.count_ones() as usize, spread[i].len());
            for &b in &masks[i + 1..] {
                assert_eq!(a & b, 0, "masks overlap");
            }
        }
        // Low round-robin rounds sit below high ones.
        assert_eq!(union, (1u64 << total) - 1, "bits are contiguous from 0");
    }

    #[test]
    fn encode_decode_round_trips() {
        let dims = vec![7usize, 30, 4];
        let coo = gen::random_uniform(&dims, 200, 3).unwrap();
        let alto = AltoTensor::build(&coo).unwrap();
        let mut out = vec![0u32; 3];
        for i in 0..coo.nnz() {
            let coords: Vec<u32> = (0..3).map(|m| coo.mode_inds(m)[i]).collect();
            let l = alto.encode_coords(&coords);
            alto.decode_coords(l, &mut out);
            assert_eq!(out, coords);
        }
    }

    #[test]
    fn rejects_shapes_over_64_bits() {
        // 5 modes x 14 bits = 70 bits.
        let dims = vec![1 << 14; 5];
        assert!(!AltoTensor::encodable(&dims));
        let mut coo = CooTensor::new(dims).unwrap();
        coo.push(&[0, 0, 0, 0, 0], 1.0).unwrap();
        assert!(AltoTensor::build(&coo).is_err());
    }

    #[test]
    fn matches_reference_all_modes_orders_2_to_5() {
        for (dims, nnz) in [
            (vec![40usize, 25], 500usize),
            (vec![12, 9, 15], 400),
            (vec![8, 7, 6, 5], 350),
            (vec![6, 5, 4, 5, 3], 300),
        ] {
            let coo = gen::random_uniform(&dims, nnz, 11).unwrap();
            let factors = random_factors(&dims, 4, 12);
            let alto = AltoTensor::build(&coo).unwrap();
            for mode in 0..dims.len() {
                let mut out = DMat::zeros(dims[mode], 4);
                alto.mttkrp_into(mode, &factors, &mut out).unwrap();
                let want = mttkrp_reference(&coo, &factors, mode).unwrap();
                assert_close(&out, &want, &format!("{}-mode, mode {mode}", dims.len()));
            }
        }
    }

    #[test]
    fn kernel_paths_are_bit_identical() {
        let dims = vec![30usize, 22, 17];
        let coo = gen::random_uniform(&dims, 1_500, 7).unwrap();
        let factors = random_factors(&dims, 9, 8); // odd rank exercises tails
        let alto = AltoTensor::build(&coo).unwrap();
        let mut levels = vec![SimdLevel::Scalar];
        let best = SimdLevel::best_available();
        if best >= SimdLevel::Avx2 {
            levels.push(SimdLevel::Avx2);
        }
        if best >= SimdLevel::Avx512 {
            levels.push(SimdLevel::Avx512);
        }
        for mode in 0..3 {
            let mut base = DMat::zeros(dims[mode], 9);
            alto.mttkrp_with_level(mode, &factors, &mut base, SimdLevel::Scalar)
                .unwrap();
            for &lv in &levels[1..] {
                let mut out = DMat::zeros(dims[mode], 9);
                alto.mttkrp_with_level(mode, &factors, &mut out, lv)
                    .unwrap();
                assert_eq!(
                    base.max_abs_diff(&out),
                    0.0,
                    "mode {mode}: scalar vs {lv:?} differ"
                );
            }
        }
    }

    #[test]
    fn blocks_cover_nonzeros_and_intervals_bound_rows() {
        let dims = vec![19usize, 8, 33];
        let coo = gen::random_uniform(&dims, 900, 5).unwrap();
        let alto = AltoTensor::build(&coo).unwrap();
        let covered: usize = alto.blocks().iter().map(|b| b.len()).sum();
        assert_eq!(covered, coo.nnz());
        for w in alto.blocks().windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        for m in 0..3 {
            for (b, blk) in alto.blocks().iter().enumerate() {
                let (lo, hi) = alto.block_interval(m, b);
                for n in blk.clone() {
                    let c = simd::extract_bits(alto.linearized()[n], alto.masks()[m]) as u32;
                    assert!(lo <= c && c < hi);
                }
                if alto.block_conflict_free(m, b) {
                    for (o, _) in alto.blocks().iter().enumerate() {
                        if o != b {
                            let (olo, ohi) = alto.block_interval(m, o);
                            assert!(ohi <= lo || hi <= olo, "conflict-free block overlaps");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn grow_dims_within_bit_budget_keeps_layout() {
        let dims = vec![10usize, 12, 9];
        let coo = gen::random_uniform(&dims, 300, 13).unwrap();
        let mut alto = AltoTensor::build(&coo).unwrap();
        let before = alto.masks().to_vec();
        // 10 -> 13 stays within 4 bits; 12 -> 16 stays within 4 bits.
        alto.grow_dims(&[13, 16, 9]).unwrap();
        assert_eq!(alto.masks(), &before[..]);
        let factors = random_factors(&[13, 16, 9], 3, 14);
        let mut out = DMat::zeros(13, 3);
        alto.mttkrp_into(0, &factors, &mut out).unwrap();
        let mut grown = coo.clone();
        grown.grow_mode(0, 13).unwrap();
        grown.grow_mode(1, 16).unwrap();
        let want = mttkrp_reference(&grown, &factors, 0).unwrap();
        assert_close(&out, &want, "grown within budget");
    }

    #[test]
    fn grow_dims_past_bit_budget_re_encodes() {
        let dims = vec![10usize, 12, 9];
        let coo = gen::random_uniform(&dims, 300, 17).unwrap();
        let mut alto = AltoTensor::build(&coo).unwrap();
        let new_dims = vec![40usize, 12, 9]; // 4 -> 6 bits on mode 0
        alto.grow_dims(&new_dims).unwrap();
        let factors = random_factors(&new_dims, 3, 18);
        let mut grown = coo.clone();
        grown.grow_mode(0, 40).unwrap();
        for mode in 0..3 {
            let mut out = DMat::zeros(new_dims[mode], 3);
            alto.mttkrp_into(mode, &factors, &mut out).unwrap();
            let want = mttkrp_reference(&grown, &factors, mode).unwrap();
            assert_close(&out, &want, &format!("re-encoded mode {mode}"));
        }
        // Shrinking is rejected.
        assert!(alto.grow_dims(&[10, 12, 9]).is_err());
    }

    #[test]
    fn rank_change_relayouts_and_stays_correct() {
        let dims = vec![14usize, 11, 13];
        let coo = gen::random_uniform(&dims, 400, 19).unwrap();
        let alto = AltoTensor::build(&coo).unwrap();
        for rank in [3usize, 7, 2] {
            let factors = random_factors(&dims, rank, 20 + rank as u64);
            for mode in 0..3 {
                let mut out = DMat::zeros(dims[mode], rank);
                alto.mttkrp_into(mode, &factors, &mut out).unwrap();
                let want = mttkrp_reference(&coo, &factors, mode).unwrap();
                assert_close(&out, &want, &format!("rank {rank}, mode {mode}"));
            }
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let dims = vec![6usize, 5, 4];
        let coo = gen::random_uniform(&dims, 100, 23).unwrap();
        let alto = AltoTensor::build(&coo).unwrap();
        let factors = random_factors(&dims, 3, 24);
        let mut bad_rows = DMat::zeros(7, 3);
        assert!(alto.mttkrp_into(0, &factors, &mut bad_rows).is_err());
        let mut out = DMat::zeros(6, 3);
        let short: Vec<DMat> = factors[..2].to_vec();
        assert!(alto.mttkrp_into(0, &short, &mut out).is_err());
    }

    #[test]
    fn duplicate_coordinates_accumulate() {
        let mut coo = CooTensor::new(vec![4, 4]).unwrap();
        coo.push(&[1, 2], 2.0).unwrap();
        coo.push(&[1, 2], 3.0).unwrap();
        coo.push(&[0, 0], 1.0).unwrap();
        let alto = AltoTensor::build(&coo).unwrap();
        let factors = random_factors(&[4, 4], 2, 31);
        let mut out = DMat::zeros(4, 2);
        alto.mttkrp_into(0, &factors, &mut out).unwrap();
        let want = mttkrp_reference(&coo, &factors, 0).unwrap();
        assert_close(&out, &want, "duplicates");
    }
}
