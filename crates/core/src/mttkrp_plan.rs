//! Precomputed MTTKRP execution plans.
//!
//! MTTKRP dominates AO-ADMM runtime (Figure 4 of the paper), and before
//! this layer existed the kernel re-derived its parallel schedule from
//! scratch on every invocation — once per mode per outer iteration — and
//! balanced work by root-slice *count*, which starves threads on skewed
//! (Zipf-like) tensors. An [`MttkrpPlan`] is built once per CSF at
//! factorization setup and reused across all outer iterations. It holds:
//!
//! * **nnz-balanced root chunks** — contiguous ranges of root subtrees
//!   whose nonzero counts are equalized via the prefix sum
//!   [`Csf::root_nnz_offsets`], so a thread's work is proportional to
//!   the nonzeros it touches, not the slices it owns;
//! * **nnz-balanced fiber chunks plus the fiber→root map** for the
//!   few-root / skewed path, which the legacy kernel reallocated and
//!   refilled on every call;
//! * **the strategy decision** ([`PlanStrategy`]) from a small cost
//!   model over root count, nnz skew, and thread count, recorded in
//!   [`PlanStats`] so the trace/bench layer can report which traversal
//!   ran.
//!
//! The fiber-parallel path uses *thread-local accumulator privatization*
//! with a deterministic chunk-order reduction instead of the former
//! striped-mutex scheme: each chunk accumulates into a private buffer
//! covering only the (contiguous) roots its fibers touch, and the
//! partials are folded into the output in chunk order. No locks are
//! taken on the hot path, and results are reproducible for a fixed plan.
//!
//! This follows SPLATT-style precomputed scheduling and the adaptive
//! format/traversal selection of AdaTM; Ballard et al.'s dimension-tree
//! work similarly amortizes setup across iterations (see PAPERS.md).

use crate::error::AoAdmmError;
use rayon::prelude::*;
use sptensor::{CooTensor, Csf};

/// Traversal strategy chosen for the root-mode MTTKRP of one CSF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStrategy {
    /// Parallelize over contiguous, nnz-balanced chunks of root
    /// subtrees. Every root owns a distinct output row, so threads never
    /// conflict and no synchronization is needed.
    RootParallel,
    /// Parallelize over nnz-balanced chunks of level-1 fibers with
    /// thread-local accumulator privatization and a deterministic
    /// reduction. Used when few or heavily skewed roots would starve
    /// root-level parallelism (third-order tensors only).
    FiberPrivatized,
    /// Serve the mode from the cross-mode dimension tree
    /// ([`crate::dimtree::IterationPlan`]), reusing partial-MTTKRP slabs
    /// memoized by earlier modes of the same outer iteration. This label
    /// is reported by the tree path for traces; a per-CSF [`MttkrpPlan`]
    /// never executes it (a forced request falls back to
    /// [`PlanStrategy::RootParallel`]).
    DimTree,
    /// Bit-interleaved linearized traversal over an
    /// [`crate::alto::AltoTensor`] with SIMD accumulation. Like
    /// [`PlanStrategy::DimTree`], this is a whole-substrate label for
    /// traces — a per-CSF plan never executes it (a forced request falls
    /// back to [`PlanStrategy::RootParallel`]).
    Alto,
}

impl PlanStrategy {
    /// Short label for traces and benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            PlanStrategy::RootParallel => "root-parallel",
            PlanStrategy::FiberPrivatized => "fiber-privatized",
            PlanStrategy::DimTree => "dim-tree",
            PlanStrategy::Alto => "alto",
        }
    }
}

/// Options controlling plan construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanOptions {
    /// Plan for this many worker threads. Defaults to the size of the
    /// current rayon pool.
    pub threads: Option<usize>,
    /// Force a strategy, bypassing the cost model. A forced
    /// [`PlanStrategy::FiberPrivatized`] on a non-third-order CSF falls
    /// back to [`PlanStrategy::RootParallel`] (the fiber traversal is
    /// only defined for three levels).
    pub force_strategy: Option<PlanStrategy>,
}

/// Record of the scheduling decision, for the trace/bench layer.
#[derive(Debug, Clone, Copy)]
pub struct PlanStats {
    /// The strategy the plan executes.
    pub strategy: PlanStrategy,
    /// Number of root subtrees in the CSF.
    pub nroots: usize,
    /// Number of nonzeros in the CSF.
    pub nnz: usize,
    /// Nonzeros in the heaviest root subtree (the skew signal).
    pub max_root_nnz: usize,
    /// Thread count the plan was built for.
    pub threads: usize,
    /// Number of parallel chunks of the chosen strategy.
    pub chunks: usize,
    /// Whether the strategy was forced rather than chosen by the model.
    pub forced: bool,
}

/// A contiguous fiber range plus the (contiguous) roots it overlaps.
#[derive(Debug, Clone)]
pub(crate) struct FiberChunk {
    /// Level-1 node range this chunk traverses.
    pub fibers: std::ops::Range<usize>,
    /// First root whose subtree overlaps the range.
    pub root_lo: usize,
    /// One past the last overlapping root.
    pub root_hi: usize,
}

/// A precomputed execution plan for the root-mode MTTKRP of one CSF.
///
/// Built once (at factorization setup) and reused for every MTTKRP over
/// the same CSF; see the module docs for contents. The plan is tied to
/// the structure it was built from — the kernels verify the pairing and
/// reject a plan whose shape does not match the CSF.
#[derive(Debug, Clone)]
pub struct MttkrpPlan {
    strategy: PlanStrategy,
    /// Contiguous nnz-balanced root ranges. Always built (even when the
    /// strategy is fiber-parallel) because the one-CSF conflicting-update
    /// kernels chunk by roots regardless of the root-mode strategy.
    pub(crate) root_chunks: Vec<std::ops::Range<usize>>,
    /// Contiguous nnz-balanced fiber ranges (fiber strategy only).
    pub(crate) fiber_chunks: Vec<FiberChunk>,
    /// Level-1 node index -> root node index (fiber strategy only).
    pub(crate) fiber_root: Vec<u32>,
    stats: PlanStats,
    // Fingerprint of the source CSF for pairing validation.
    nmodes: usize,
    root_mode: usize,
}

impl MttkrpPlan {
    /// Build a plan for `csf` with default options (current rayon pool
    /// size, strategy chosen by the cost model).
    pub fn build(csf: &Csf) -> Self {
        Self::with_options(csf, PlanOptions::default())
    }

    /// Build a plan for `csf` with explicit options.
    pub fn with_options(csf: &Csf, opts: PlanOptions) -> Self {
        let threads = opts
            .threads
            .unwrap_or_else(rayon::current_num_threads)
            .max(1);
        let nroots = csf.root_count();
        let nnz = csf.nnz();
        let offsets = csf.root_nnz_offsets();
        let max_root_nnz = offsets.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        let nfibers = if csf.nmodes() >= 2 {
            csf.fids(1).len()
        } else {
            0
        };

        let chosen = match opts.force_strategy {
            Some(s) => s,
            None => choose_strategy(csf.nmodes(), threads, nroots, nnz, nfibers, max_root_nnz),
        };
        // The fiber traversal is only defined for three levels, and the
        // dimension tree is not a per-CSF strategy at all — both
        // normalize to the root traversal here.
        let strategy = match chosen {
            PlanStrategy::FiberPrivatized if csf.nmodes() != 3 => PlanStrategy::RootParallel,
            PlanStrategy::DimTree | PlanStrategy::Alto => PlanStrategy::RootParallel,
            s => s,
        };

        let root_chunks = balance_by_prefix(&offsets, threads * 8);

        let (fiber_chunks, fiber_root) = if strategy == PlanStrategy::FiberPrivatized {
            let mut fiber_root = vec![0u32; nfibers];
            for r in 0..nroots {
                fiber_root[csf.fptr(0)[r]..csf.fptr(0)[r + 1]].fill(r as u32);
            }
            // fptr(1) is the per-fiber leaf prefix sum for a three-mode
            // CSF, so the same balancer splits fibers by nonzero count.
            let ranges = balance_by_prefix(csf.fptr(1), threads * 8);
            let chunks = ranges
                .into_iter()
                .map(|fibers| {
                    let root_lo = fiber_root[fibers.start] as usize;
                    let root_hi = fiber_root[fibers.end - 1] as usize + 1;
                    FiberChunk {
                        fibers,
                        root_lo,
                        root_hi,
                    }
                })
                .collect();
            (chunks, fiber_root)
        } else {
            (Vec::new(), Vec::new())
        };

        let chunks = match strategy {
            PlanStrategy::RootParallel | PlanStrategy::DimTree | PlanStrategy::Alto => {
                root_chunks.len()
            }
            PlanStrategy::FiberPrivatized => fiber_chunks.len(),
        };
        MttkrpPlan {
            strategy,
            root_chunks,
            fiber_chunks,
            fiber_root,
            stats: PlanStats {
                strategy,
                nroots,
                nnz,
                max_root_nnz,
                threads,
                chunks,
                forced: opts.force_strategy.is_some(),
            },
            nmodes: csf.nmodes(),
            root_mode: csf.mode_order()[0],
        }
    }

    /// The strategy this plan executes.
    #[inline]
    pub fn strategy(&self) -> PlanStrategy {
        self.strategy
    }

    /// The scheduling-decision record.
    #[inline]
    pub fn stats(&self) -> &PlanStats {
        &self.stats
    }

    /// Error unless this plan was built from a CSF with the same shape
    /// as `csf` (mode count, root mode, root count, nnz).
    pub(crate) fn check_matches(&self, csf: &Csf) -> Result<(), AoAdmmError> {
        if self.nmodes != csf.nmodes()
            || self.root_mode != csf.mode_order()[0]
            || self.stats.nroots != csf.root_count()
            || self.stats.nnz != csf.nnz()
        {
            return Err(AoAdmmError::Config(
                "MTTKRP plan does not match the CSF it is applied to".into(),
            ));
        }
        Ok(())
    }
}

/// The cost model: pick the traversal for a root-mode MTTKRP.
///
/// Root-parallelism is free of synchronization and reduction cost, so it
/// wins whenever nnz-balanced root chunks can keep every thread busy.
/// Two situations defeat it, both pushed to the fiber-privatized path:
///
/// * **few roots** (`nroots < 4 * threads`) — too few scheduling units
///   regardless of balance (Patents-like tensors);
/// * **dominant root** (`max_root_nnz > 2 * nnz / threads`) — a single
///   subtree exceeds twice an even per-thread share, so chunking at root
///   granularity leaves threads idle behind it (Zipf skew).
///
/// The fiber path additionally needs enough fibers (`>= 2 * threads`) to
/// split, and a single thread always takes the root path (the reduction
/// would be pure overhead).
fn choose_strategy(
    nmodes: usize,
    threads: usize,
    nroots: usize,
    nnz: usize,
    nfibers: usize,
    max_root_nnz: usize,
) -> PlanStrategy {
    if nmodes != 3 || threads <= 1 || nfibers < threads * 2 {
        return PlanStrategy::RootParallel;
    }
    let few_roots = nroots < threads * 4;
    let dominant_root = max_root_nnz.saturating_mul(threads) > nnz.saturating_mul(2);
    if few_roots || dominant_root {
        PlanStrategy::FiberPrivatized
    } else {
        PlanStrategy::RootParallel
    }
}

/// Headroom kept under ALTO's 64-bit linearized index so streaming
/// growth ([`crate::alto::AltoTensor::grow_dims`]) rarely forces a
/// rebuild — and never an un-encodable shape — right after `Auto`
/// selected ALTO.
const ALTO_AUTO_BIT_BUDGET: u32 = 56;

/// Resolve [`CsfPolicy::Auto`] from tensor shape/nnz statistics — the
/// substrate-level companion of the per-CSF [`choose_strategy`] cost
/// model.
///
/// The decision ladder, justified by the per-substrate cost structure:
///
/// 1. **ALTO** when the shape linearizes comfortably into 64 bits
///    (≤ [`ALTO_AUTO_BIT_BUDGET`] bits), the tensor is *skewed* — some
///    mode's heaviest slice holds ≥ `ALTO_SKEW_RATIO`× the mean slice
///    nonzero count — and fibers are *incompressible*: the expected
///    nonzeros per fiber in the CSF's best orientation stays below
///    [`ALTO_FIBER_DUP_MAX`]. Skew starves the CSF root-parallel
///    schedule (one root subtree dominates a chunk) while ALTO's
///    nnz-balanced blocks are oblivious to it; but when side modes are
///    short, the CSF amortizes whole Hadamard chains over long fibers —
///    a structural saving ALTO's per-nonzero kernels cannot match, so
///    compressible tensors stay on CSF regardless of skew.
/// 2. **Dimension tree** for other tensors of order ≥ 4, where reusing
///    partial Khatri-Rao slabs across modes cuts tensor traversals the
///    most.
/// 3. **Per-mode CSF** otherwise (the long-fiber-friendly default).
pub fn choose_policy(tensor: &CooTensor) -> crate::config::CsfPolicy {
    use crate::config::CsfPolicy;
    let dims = tensor.dims();
    let nnz = tensor.nnz();
    let nmodes = dims.len();
    if nmodes >= 2
        && nnz > 0
        && crate::alto::required_bits(dims) <= ALTO_AUTO_BIT_BUDGET
        && tensor_is_skewed(tensor)
        && fibers_incompressible(tensor)
    {
        return CsfPolicy::Alto;
    }
    if nmodes >= 4 {
        CsfPolicy::DimTree
    } else {
        CsfPolicy::PerMode
    }
}

/// Expected nonzeros per fiber (under a uniform-occupancy estimate, in
/// the CSF orientation that compresses best — leaf on the longest mode)
/// above which the CSF's amortize-over-the-fiber structure beats ALTO's
/// per-nonzero kernels. Measured on the `alto_speedup` harness: skewed
/// tensors with short side modes sit at 50×+ duplication and run ~1.3×
/// faster on the per-mode CSF; hyper-sparse ones sit below 1 and run
/// 1.3–2× faster on ALTO.
const ALTO_FIBER_DUP_MAX: f64 = 4.0;

/// Estimate the best-case CSF fiber duplication `nnz / #fiber-slots`,
/// maximized over the leaf-mode choice — i.e. `nnz * max_dim /
/// total_cells` — and compare against [`ALTO_FIBER_DUP_MAX`].
fn fibers_incompressible(tensor: &CooTensor) -> bool {
    let cells: f64 = tensor.dims().iter().map(|&d| d as f64).product();
    let max_dim = tensor.dims().iter().copied().max().unwrap_or(1) as f64;
    if cells <= 0.0 {
        return false;
    }
    tensor.nnz() as f64 * max_dim / cells <= ALTO_FIBER_DUP_MAX
}

/// Heaviest-slice-to-mean ratio above which a mode counts as skewed for
/// [`choose_policy`]. Uniform random tensors sit near 1–3× (Poisson
/// tail); Zipf-distributed modes reach tens to thousands.
const ALTO_SKEW_RATIO: f64 = 8.0;

fn tensor_is_skewed(tensor: &CooTensor) -> bool {
    let nnz = tensor.nnz() as f64;
    tensor.dims().iter().enumerate().any(|(m, &d)| {
        if d == 0 {
            return false;
        }
        let max = tensor.slice_counts(m).into_iter().max().unwrap_or(0) as f64;
        max * d as f64 >= ALTO_SKEW_RATIO * nnz
    })
}

/// Split `0..n` (where `prefix` has length `n + 1` and `prefix[i]` is the
/// cumulative weight of items `0..i`) into at most `target_chunks`
/// contiguous ranges of roughly equal weight. Every chunk gets at least
/// one item; an item heavier than the even share gets its own chunk.
pub(crate) fn balance_by_prefix(
    prefix: &[usize],
    target_chunks: usize,
) -> Vec<std::ops::Range<usize>> {
    let n = prefix.len() - 1;
    if n == 0 {
        return Vec::new();
    }
    let total = prefix[n] - prefix[0];
    let per = total.div_ceil(target_chunks.max(1)).max(1);
    let mut chunks = Vec::with_capacity(target_chunks.min(n));
    let mut start = 0usize;
    while start < n {
        let goal = prefix[start] + per;
        let mut end = start + 1;
        while end < n && prefix[end + 1] <= goal {
            end += 1;
        }
        chunks.push(start..end);
        start = end;
    }
    chunks
}

/// Build one CSF per mode — in parallel, since the per-mode sorts and
/// compilations are independent — each paired with its execution plan.
///
/// This is the shared setup path of the ALS, PGD and AO-ADMM drivers.
pub fn build_mode_plans(tensor: &CooTensor) -> Result<Vec<(Csf, MttkrpPlan)>, AoAdmmError> {
    (0..tensor.nmodes())
        .into_par_iter()
        .map(|m| {
            let csf = Csf::from_coo_rooted(tensor, m)?;
            let plan = MttkrpPlan::build(&csf);
            Ok((csf, plan))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::gen;

    #[test]
    fn balance_by_prefix_equal_weights() {
        // 8 items of weight 1, 4 chunks -> 2 items each.
        let prefix: Vec<usize> = (0..=8).collect();
        let chunks = balance_by_prefix(&prefix, 4);
        assert_eq!(chunks, vec![0..2, 2..4, 4..6, 6..8]);
    }

    #[test]
    fn balance_by_prefix_heavy_item_gets_own_chunk() {
        // Weights 1, 100, 1, 1: the heavy item must not drag neighbours
        // into its chunk beyond the even share.
        let prefix = vec![0, 1, 101, 102, 103];
        let chunks = balance_by_prefix(&prefix, 4);
        // Every item appears exactly once, in order.
        assert_eq!(chunks.first().unwrap().start, 0);
        assert_eq!(chunks.last().unwrap().end, 4);
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // The heavy item (index 1) is alone in its chunk.
        let heavy = chunks.iter().find(|c| c.contains(&1)).unwrap();
        assert_eq!(*heavy, 1..2);
    }

    #[test]
    fn balance_by_prefix_single_item() {
        let chunks = balance_by_prefix(&[0, 7], 16);
        assert_eq!(chunks, vec![0..1]);
    }

    #[test]
    fn balance_by_prefix_empty() {
        assert!(balance_by_prefix(&[0], 4).is_empty());
    }

    #[test]
    fn plan_covers_all_roots_exactly_once() {
        let coo = gen::random_uniform(&[50, 20, 30], 2_000, 3).unwrap();
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let plan = MttkrpPlan::with_options(
            &csf,
            PlanOptions {
                threads: Some(4),
                force_strategy: Some(PlanStrategy::RootParallel),
            },
        );
        let covered: usize = plan.root_chunks.iter().map(|c| c.len()).sum();
        assert_eq!(covered, csf.root_count());
        assert_eq!(plan.root_chunks.first().unwrap().start, 0);
        assert_eq!(plan.root_chunks.last().unwrap().end, csf.root_count());
        for w in plan.root_chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn fiber_plan_covers_all_fibers_and_maps_roots() {
        let coo = gen::random_uniform(&[3, 40, 40], 3_000, 5).unwrap();
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let plan = MttkrpPlan::with_options(
            &csf,
            PlanOptions {
                threads: Some(8),
                force_strategy: Some(PlanStrategy::FiberPrivatized),
            },
        );
        assert_eq!(plan.strategy(), PlanStrategy::FiberPrivatized);
        let nfibers = csf.fids(1).len();
        let covered: usize = plan.fiber_chunks.iter().map(|c| c.fibers.len()).sum();
        assert_eq!(covered, nfibers);
        assert_eq!(plan.fiber_root.len(), nfibers);
        // The fiber -> root map inverts fptr(0).
        for r in 0..csf.root_count() {
            for j in csf.fptr(0)[r]..csf.fptr(0)[r + 1] {
                assert_eq!(plan.fiber_root[j] as usize, r);
            }
        }
        // Chunk root spans are consistent with the map.
        for c in &plan.fiber_chunks {
            assert_eq!(c.root_lo, plan.fiber_root[c.fibers.start] as usize);
            assert_eq!(c.root_hi, plan.fiber_root[c.fibers.end - 1] as usize + 1);
            assert!(c.root_lo < c.root_hi);
        }
    }

    #[test]
    fn cost_model_prefers_fiber_path_for_few_roots() {
        // Patents-like: 3 fat root slices, many threads.
        let coo = gen::random_uniform(&[3, 60, 60], 4_000, 17).unwrap();
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let plan = MttkrpPlan::with_options(
            &csf,
            PlanOptions {
                threads: Some(8),
                force_strategy: None,
            },
        );
        assert_eq!(plan.strategy(), PlanStrategy::FiberPrivatized);
        assert!(!plan.stats().forced);
    }

    #[test]
    fn cost_model_prefers_root_path_for_many_uniform_roots() {
        let coo = gen::random_uniform(&[500, 40, 40], 5_000, 19).unwrap();
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let plan = MttkrpPlan::with_options(
            &csf,
            PlanOptions {
                threads: Some(8),
                force_strategy: None,
            },
        );
        assert_eq!(plan.strategy(), PlanStrategy::RootParallel);
    }

    #[test]
    fn single_thread_always_takes_root_path() {
        let coo = gen::random_uniform(&[3, 60, 60], 4_000, 17).unwrap();
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let plan = MttkrpPlan::with_options(
            &csf,
            PlanOptions {
                threads: Some(1),
                force_strategy: None,
            },
        );
        assert_eq!(plan.strategy(), PlanStrategy::RootParallel);
    }

    #[test]
    fn forced_fiber_strategy_falls_back_on_four_modes() {
        let coo = gen::random_uniform(&[4, 5, 6, 7], 200, 23).unwrap();
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let plan = MttkrpPlan::with_options(
            &csf,
            PlanOptions {
                threads: Some(8),
                force_strategy: Some(PlanStrategy::FiberPrivatized),
            },
        );
        assert_eq!(plan.strategy(), PlanStrategy::RootParallel);
    }

    #[test]
    fn plan_rejects_mismatched_csf() {
        let a = gen::random_uniform(&[10, 10, 10], 300, 29).unwrap();
        let b = gen::random_uniform(&[10, 10, 10], 200, 31).unwrap();
        let csf_a = Csf::from_coo_rooted(&a, 0).unwrap();
        let csf_b = Csf::from_coo_rooted(&b, 0).unwrap();
        let plan = MttkrpPlan::build(&csf_a);
        assert!(plan.check_matches(&csf_a).is_ok());
        assert!(plan.check_matches(&csf_b).is_err());
    }

    #[test]
    fn build_mode_plans_pairs_each_mode() {
        let coo = gen::random_uniform(&[12, 9, 15], 400, 37).unwrap();
        let pairs = build_mode_plans(&coo).unwrap();
        assert_eq!(pairs.len(), 3);
        for (m, (csf, plan)) in pairs.iter().enumerate() {
            assert_eq!(csf.mode_order()[0], m);
            assert!(plan.check_matches(csf).is_ok());
        }
    }

    #[test]
    fn choose_policy_walks_the_decision_ladder() {
        use crate::config::CsfPolicy;
        use sptensor::gen::{planted, PlantedConfig};

        // Skewed AND hyper-sparse (large side modes, singleton fibers):
        // ALTO.
        let mut cfg = PlantedConfig::small();
        cfg.dims = vec![800, 700, 600];
        cfg.nnz = 3_000;
        cfg.zipf_exponents = vec![1.4, 0.0, 0.0];
        assert_eq!(choose_policy(&planted(&cfg).unwrap()), CsfPolicy::Alto);

        // Skewed but compressible (short side modes give the CSF long
        // fibers to amortize over): stays on the CSF family.
        let mut cfg = PlantedConfig::small();
        cfg.dims = vec![2000, 12, 10];
        cfg.nnz = 30_000;
        cfg.zipf_exponents = vec![1.3, 0.0, 0.0];
        assert_eq!(choose_policy(&planted(&cfg).unwrap()), CsfPolicy::PerMode);

        // Uniform 4-mode: dimension tree. Uniform 3-mode: per-mode.
        let t = sptensor::gen::random_uniform(&[20, 18, 16, 14], 4_000, 7).unwrap();
        assert_eq!(choose_policy(&t), CsfPolicy::DimTree);
        let t = sptensor::gen::random_uniform(&[40, 30, 20], 3_000, 8).unwrap();
        assert_eq!(choose_policy(&t), CsfPolicy::PerMode);
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(PlanStrategy::RootParallel.name(), "root-parallel");
        assert_eq!(PlanStrategy::FiberPrivatized.name(), "fiber-privatized");
        assert_eq!(PlanStrategy::DimTree.name(), "dim-tree");
        assert_eq!(PlanStrategy::Alto.name(), "alto");
    }

    #[test]
    fn forced_dimtree_strategy_falls_back_to_root_parallel() {
        // DimTree is a cross-mode label, not a per-CSF traversal.
        let coo = gen::random_uniform(&[10, 10, 10], 300, 41).unwrap();
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let plan = MttkrpPlan::with_options(
            &csf,
            PlanOptions {
                threads: Some(4),
                force_strategy: Some(PlanStrategy::DimTree),
            },
        );
        assert_eq!(plan.strategy(), PlanStrategy::RootParallel);
    }
}
