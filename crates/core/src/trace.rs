//! Timing and convergence traces.
//!
//! The paper's evaluation needs three views of a run: the per-kernel time
//! breakdown (Figure 3), the wall-clock convergence curve (Figure 6, left
//! column) and the per-outer-iteration convergence curve (Figure 6, right
//! column). The driver records everything needed for all three here.

use crate::inner::InnerSolverKind;
use crate::mttkrp_plan::PlanStrategy;
use crate::sparsity::SparsityDecision;
use std::time::Duration;

/// Record of one mode update within an outer iteration.
#[derive(Debug, Clone)]
pub struct ModeRecord {
    /// Tensor mode updated.
    pub mode: usize,
    /// MTTKRP traversal strategy of this mode's execution plan
    /// (`None` for the one-CSF conflicting-update path, which has no
    /// root-mode plan strategy).
    pub mttkrp_strategy: Option<PlanStrategy>,
    /// Time spent in MTTKRP (including any sparse-snapshot build).
    pub mttkrp: Duration,
    /// Time spent in the inner solver (ADMM or PDS).
    pub admm: Duration,
    /// Inner-solver iterations (max over blocks for blocked strategies).
    pub admm_iterations: usize,
    /// Total row-iterations of inner-solver work.
    pub admm_row_iterations: u64,
    /// Which inner-solver backend ran for this mode (`None` for updates
    /// outside the AO-ADMM driver, like ALS and PGD).
    pub inner: Option<InnerSolverKind>,
    /// Sparsity decision taken for this mode's MTTKRP leaf factor.
    pub sparsity: SparsityDecision,
    /// Dimension-tree slabs reused from the memo cache by this mode's
    /// MTTKRP (0 off the [`CsfPolicy::DimTree`](crate::CsfPolicy) path).
    pub slab_hits: u32,
    /// Dimension-tree slabs recomputed because a dependency factor
    /// changed (0 off the dimension-tree path).
    pub slab_misses: u32,
}

/// Record of one outer iteration.
#[derive(Debug, Clone)]
pub struct IterRecord {
    /// 1-based outer iteration number.
    pub iter: usize,
    /// Relative error at the end of this iteration.
    pub rel_error: f64,
    /// Wall-clock time since factorization start, at the end of this
    /// iteration.
    pub elapsed: Duration,
    /// Per-mode details.
    pub modes: Vec<ModeRecord>,
}

impl IterRecord {
    /// Total MTTKRP time in this iteration.
    pub fn mttkrp_time(&self) -> Duration {
        self.modes.iter().map(|m| m.mttkrp).sum()
    }

    /// Total ADMM time in this iteration.
    pub fn admm_time(&self) -> Duration {
        self.modes.iter().map(|m| m.admm).sum()
    }
}

/// Record of one streaming batch: ingestion bookkeeping plus the bounded
/// warm-started refit that followed. Produced by the `aoadmm-stream`
/// crate's `StreamingFactorizer`; kept here beside the other run records
/// so trace consumers (CLI reporting, experiment harnesses) share one
/// vocabulary.
#[derive(Debug, Clone)]
pub struct RefitRecord {
    /// 0-based batch number (batch 0 is the initial fit of the base
    /// tensor).
    pub batch: usize,
    /// Nonzeros appended at previously empty coordinates.
    pub appended: usize,
    /// Operations that hit an existing nonzero (value updates).
    pub updated: usize,
    /// Rows added to each mode by growth operations in this batch.
    pub grown_rows: Vec<usize>,
    /// Delta-buffer size (stored corrections) after ingesting the batch.
    pub delta_nnz: usize,
    /// Logical nonzero count of the streamed tensor after the batch.
    pub total_nnz: usize,
    /// Whether this batch triggered (or adopted) a CSF merge/rebuild.
    pub merged: bool,
    /// Outer AO-ADMM iterations the refit ran.
    pub outer_iterations: usize,
    /// Relative error after the refit.
    pub rel_error: f64,
    /// Time spent ingesting the batch (delta merge, growth, plan upkeep).
    pub ingest: Duration,
    /// Time spent in the warm-started refit.
    pub refit: Duration,
}

impl RefitRecord {
    /// End-to-end latency of the batch: ingestion plus refit.
    pub fn batch_time(&self) -> Duration {
        self.ingest + self.refit
    }
}

/// Complete trace of a factorization run.
#[derive(Debug, Clone)]
pub struct FactorizeTrace {
    /// One record per outer iteration.
    pub iterations: Vec<IterRecord>,
    /// Total wall-clock time including setup (CSF builds, init).
    pub total: Duration,
    /// Time spent building CSF structures and initializing factors.
    pub setup: Duration,
    /// Relative error after the final iteration.
    pub final_error: f64,
    /// Whether the outer tolerance was met before the iteration cap.
    pub converged: bool,
}

impl FactorizeTrace {
    /// Total MTTKRP time across the run.
    pub fn mttkrp_total(&self) -> Duration {
        self.iterations.iter().map(|i| i.mttkrp_time()).sum()
    }

    /// Total ADMM time across the run.
    pub fn admm_total(&self) -> Duration {
        self.iterations.iter().map(|i| i.admm_time()).sum()
    }

    /// Everything in the iteration loop that is neither MTTKRP nor ADMM
    /// (Gram products, error evaluation). One-time setup (CSF builds,
    /// factor init) is excluded, matching the paper's "factorization
    /// time".
    pub fn other_total(&self) -> Duration {
        self.total
            .saturating_sub(self.setup)
            .saturating_sub(self.mttkrp_total())
            .saturating_sub(self.admm_total())
    }

    /// Fractions of factorization time (setup excluded) in
    /// (MTTKRP, ADMM, other) — the bars of Figure 3.
    pub fn time_fractions(&self) -> (f64, f64, f64) {
        let total = self.total.saturating_sub(self.setup).as_secs_f64();
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        let m = self.mttkrp_total().as_secs_f64() / total;
        let a = self.admm_total().as_secs_f64() / total;
        (m, a, (1.0 - m - a).max(0.0))
    }

    /// Number of outer iterations executed.
    pub fn outer_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// `(elapsed_seconds, rel_error)` series — Figure 6 left column.
    pub fn error_vs_time(&self) -> Vec<(f64, f64)> {
        self.iterations
            .iter()
            .map(|i| (i.elapsed.as_secs_f64(), i.rel_error))
            .collect()
    }

    /// `(outer_iteration, rel_error)` series — Figure 6 right column.
    pub fn error_vs_iteration(&self) -> Vec<(usize, f64)> {
        self.iterations
            .iter()
            .map(|i| (i.iter, i.rel_error))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsity::Structure;

    fn mode_record(mttkrp_ms: u64, admm_ms: u64) -> ModeRecord {
        ModeRecord {
            mode: 0,
            mttkrp_strategy: Some(PlanStrategy::RootParallel),
            mttkrp: Duration::from_millis(mttkrp_ms),
            admm: Duration::from_millis(admm_ms),
            admm_iterations: 3,
            admm_row_iterations: 30,
            inner: Some(InnerSolverKind::Admm),
            sparsity: SparsityDecision {
                density: 1.0,
                structure: Structure::Dense,
            },
            slab_hits: 0,
            slab_misses: 0,
        }
    }

    fn trace() -> FactorizeTrace {
        FactorizeTrace {
            iterations: vec![
                IterRecord {
                    iter: 1,
                    rel_error: 0.5,
                    elapsed: Duration::from_millis(100),
                    modes: vec![mode_record(30, 20), mode_record(10, 20)],
                },
                IterRecord {
                    iter: 2,
                    rel_error: 0.4,
                    elapsed: Duration::from_millis(200),
                    modes: vec![mode_record(30, 20), mode_record(10, 20)],
                },
            ],
            total: Duration::from_millis(200),
            setup: Duration::from_millis(10),
            final_error: 0.4,
            converged: true,
        }
    }

    #[test]
    fn totals_sum_over_iterations() {
        let t = trace();
        assert_eq!(t.mttkrp_total(), Duration::from_millis(80));
        assert_eq!(t.admm_total(), Duration::from_millis(80));
        // total 200 - setup 10 - 80 - 80.
        assert_eq!(t.other_total(), Duration::from_millis(30));
    }

    #[test]
    fn fractions_sum_to_one() {
        let t = trace();
        let (m, a, o) = t.time_fractions();
        assert!((m + a + o - 1.0).abs() < 1e-12);
        // Denominator excludes the 10ms setup: 80 / 190.
        assert!((m - 80.0 / 190.0).abs() < 1e-12);
    }

    #[test]
    fn series_extraction() {
        let t = trace();
        assert_eq!(t.error_vs_iteration(), vec![(1, 0.5), (2, 0.4)]);
        let ts = t.error_vs_time();
        assert_eq!(ts.len(), 2);
        assert!((ts[1].0 - 0.2).abs() < 1e-12);
        assert_eq!(t.outer_iterations(), 2);
    }

    #[test]
    fn empty_trace_fractions() {
        let t = FactorizeTrace {
            iterations: vec![],
            total: Duration::ZERO,
            setup: Duration::ZERO,
            final_error: 1.0,
            converged: false,
        };
        assert_eq!(t.time_fractions(), (0.0, 0.0, 0.0));
    }
}
