//! Projected gradient descent (PGD) baseline for constrained CPD.
//!
//! The paper's related work (Section III-A, e.g. Zhang et al.) solves
//! non-negative tensor factorization with projected gradient methods.
//! This module implements that comparator on top of the same substrates:
//! for each mode, the block objective is
//!
//! ```text
//! f(A) = 1/2 ||X_(m) - A (..(*)..)^T||^2,  grad f(A) = A*G - K
//! ```
//!
//! with `G` the Hadamard Gram product and `K` the MTTKRP output, so one
//! PGD step is `A <- prox(A - step * (A G - K))` and the Lipschitz
//! constant of the gradient is `||G||_2` (bounded here by the maximum
//! row sum, a tight bound for the near-diagonal Gram products of CPD).
//!
//! PGD shares MTTKRP costs with AO-ADMM but replaces the inner ADMM with
//! first-order steps; it converges slower per iteration (no second-order
//! normal-equations solve), which is exactly why the paper builds on
//! AO-ADMM. The `baselines` harness binary quantifies that gap.

use crate::config::{CsfPolicy, Factorizer};
use crate::error::AoAdmmError;
use crate::kruskal::{relative_error_fast, KruskalModel};
use crate::sparsity::{SparsityDecision, Structure};
use crate::substrate::DenseEngine;
use crate::trace::{FactorizeTrace, IterRecord, ModeRecord};
use crate::FactorizeResult;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use splinalg::panel::{self, PANEL_ROWS};
use splinalg::{ops, vecops, DMat, Workspace};
use sptensor::CooTensor;
use std::time::Instant;

/// Configuration for the PGD baseline.
#[derive(Debug, Clone, Copy)]
pub struct PgdConfig {
    /// Decomposition rank.
    pub rank: usize,
    /// Cap on outer iterations.
    pub max_outer: usize,
    /// Gradient steps per mode per outer iteration.
    pub inner_steps: usize,
    /// Stop when relative error improves less than this.
    pub tol: f64,
    /// Step-size safety factor in (0, 1]; the step is
    /// `safety / L_bound`.
    pub step_safety: f64,
    /// Factor-initialization seed.
    pub seed: u64,
    /// Serve MTTKRP from a dimension-tree plan ([`crate::dimtree`])
    /// instead of per-mode CSFs. Ignored for tensors with fewer than
    /// three modes, and overridden by `csf_policy` when that is set.
    pub use_dimtree: bool,
    /// Full substrate policy ([`CsfPolicy`], including `Alto` and
    /// `Auto`). `None` keeps the legacy `use_dimtree` mapping.
    pub csf_policy: Option<CsfPolicy>,
}

impl Default for PgdConfig {
    fn default() -> Self {
        PgdConfig {
            rank: 10,
            max_outer: 200,
            inner_steps: 10,
            tol: 1e-6,
            step_safety: 1.0,
            seed: 0,
            use_dimtree: false,
            csf_policy: None,
        }
    }
}

/// Upper bound on `||G||_2` via the maximum absolute row sum
/// (infinity norm; valid since `G` is symmetric).
fn lipschitz_bound(g: &DMat) -> f64 {
    let mut best = 0.0f64;
    for i in 0..g.nrows() {
        let s: f64 = g.row(i).iter().map(|x| x.abs()).sum();
        best = best.max(s);
    }
    best
}

/// Run projected gradient CPD with the constraints configured on
/// `factorizer` (rank/tolerance/seed are taken from `cfg`).
pub fn pgd_factorize(
    tensor: &CooTensor,
    factorizer: &Factorizer,
    cfg: &PgdConfig,
) -> Result<FactorizeResult, AoAdmmError> {
    if cfg.rank == 0 || cfg.max_outer == 0 || cfg.inner_steps == 0 {
        return Err(AoAdmmError::Config(
            "rank, max_outer and inner_steps must be positive".into(),
        ));
    }
    if !(cfg.step_safety > 0.0 && cfg.step_safety <= 1.0) {
        return Err(AoAdmmError::Config("step_safety must be in (0, 1]".into()));
    }
    if tensor.nnz() == 0 {
        return Err(AoAdmmError::Config("tensor has no nonzeros".into()));
    }
    let nmodes = tensor.nmodes();
    let dims = tensor.dims().to_vec();
    let t0 = Instant::now();

    // MTTKRP engine (dimension tree, per-mode CSFs, or ALTO), built
    // once and reused across every outer iteration (see als.rs).
    let policy = cfg.csf_policy.unwrap_or(if cfg.use_dimtree {
        CsfPolicy::DimTree
    } else {
        CsfPolicy::PerMode
    });
    let mut engine = DenseEngine::build(tensor, policy)?;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut factors: Vec<DMat> = dims
        .iter()
        .map(|&d| DMat::random(d, cfg.rank, 0.0, 1.0, &mut rng))
        .collect();
    let mut grams: Vec<DMat> = factors.iter().map(|f| f.gram()).collect();
    let xnorm_sq = tensor.norm_sq();
    // Match the initial model norm to the data norm (see driver.rs).
    let mnorm_sq = ops::model_norm_sq(&grams)?;
    if mnorm_sq > 0.0 && xnorm_sq > 0.0 {
        let scale = (xnorm_sq / mnorm_sq).powf(1.0 / (2.0 * nmodes as f64));
        for f in &mut factors {
            f.scale(scale);
        }
        grams = factors.iter().map(|f| f.gram()).collect();
    }
    let mut kbufs: Vec<DMat> = dims.iter().map(|&d| DMat::zeros(d, cfg.rank)).collect();
    // Hot-loop scratch (see driver.rs): the combined Gram buffer, a
    // per-panel gradient-row pool and the dense-kernel workspace.
    let mut gram_buf = DMat::zeros(cfg.rank, cfg.rank);
    let mut grad_pool: Vec<Vec<f64>> = Vec::new();
    let mut lin_ws = Workspace::new();
    let setup = t0.elapsed();

    let mut iterations = Vec::new();
    let mut prev_err = f64::INFINITY;
    let mut converged = false;

    for outer in 1..=cfg.max_outer {
        let mut modes = Vec::with_capacity(nmodes);
        let mut last_inner = 0.0;
        for m in 0..nmodes {
            ops::gram_hadamard_into(&grams, m, &mut gram_buf)?;
            let gram = &gram_buf;

            let tm = Instant::now();
            let (strategy, slab_hits, slab_misses) =
                engine.mttkrp_dense(m, &factors, &mut kbufs[m])?;
            let mttkrp_time = tm.elapsed();

            let ta = Instant::now();
            let lip = lipschitz_bound(gram).max(1e-12);
            let step = cfg.step_safety / lip;
            let prox = factorizer.constraint_for(m);
            let f = cfg.rank;
            // inner_steps rounds of A <- prox(A - step*(A G - K)),
            // parallel over row panels (each row's gradient only needs
            // its own row of A and the shared F x F Gram). The gradient
            // row comes from a per-panel scratch pool, so the steps
            // allocate nothing once warm.
            let chunk = PANEL_ROWS * f;
            let npanels = dims[m].div_ceil(PANEL_ROWS);
            if grad_pool.len() < npanels {
                grad_pool.resize_with(npanels, Vec::new);
            }
            for gp in grad_pool[..npanels].iter_mut() {
                if gp.len() < f {
                    gp.resize(f, 0.0);
                }
            }
            for _ in 0..cfg.inner_steps {
                factors[m]
                    .as_mut_slice()
                    .par_chunks_mut(chunk)
                    .zip(kbufs[m].as_slice().par_chunks(chunk))
                    .zip(grad_pool[..npanels].par_iter_mut())
                    .for_each(|((apanel, kpanel), gp)| {
                        let grad = &mut gp[..f];
                        for (arow, krow) in apanel.chunks_mut(f).zip(kpanel.chunks(f)) {
                            // grad_row = arow * G - krow.
                            vecops::fill(grad, 0.0);
                            for (c, &a) in arow.iter().enumerate() {
                                if a != 0.0 {
                                    vecops::axpy(a, gram.row(c), grad);
                                }
                            }
                            for (g, &k) in grad.iter_mut().zip(krow) {
                                *g -= k;
                            }
                            for (a, g) in arow.iter_mut().zip(grad.iter()) {
                                *a -= step * g;
                            }
                            prox.apply_row(arow, 1.0 / step);
                        }
                    });
            }
            let grad_time = ta.elapsed();

            engine.note_factor_changed(m);

            panel::gram_into(&factors[m], &mut lin_ws, &mut grams[m])?;
            if m == nmodes - 1 {
                last_inner = ops::inner_product(&kbufs[m], &factors[m])?;
            }
            modes.push(ModeRecord {
                mode: m,
                mttkrp_strategy: Some(strategy),
                mttkrp: mttkrp_time,
                admm: grad_time,
                admm_iterations: cfg.inner_steps,
                admm_row_iterations: (cfg.inner_steps * dims[m]) as u64,
                inner: None,
                sparsity: SparsityDecision {
                    density: 1.0,
                    structure: Structure::Dense,
                },
                slab_hits,
                slab_misses,
            });
        }

        let model_norm_sq = ops::model_norm_sq(&grams)?;
        let rel_error = relative_error_fast(xnorm_sq, last_inner, model_norm_sq);
        iterations.push(IterRecord {
            iter: outer,
            rel_error,
            elapsed: t0.elapsed(),
            modes,
        });
        if outer > 1 && prev_err - rel_error < cfg.tol {
            converged = true;
            break;
        }
        prev_err = rel_error;
    }

    let final_error = iterations.last().map(|i| i.rel_error).unwrap_or(f64::NAN);
    // PGD keeps no dual state; zero duals are the correct warm start for
    // a follow-up AO-ADMM run.
    let duals: Vec<DMat> = factors
        .iter()
        .map(|f| DMat::zeros(f.nrows(), f.ncols()))
        .collect();
    let grams: Vec<DMat> = factors.iter().map(|f| f.gram()).collect();
    Ok(FactorizeResult {
        duals,
        grams,
        model: KruskalModel::new(factors),
        trace: FactorizeTrace {
            iterations,
            total: t0.elapsed(),
            setup,
            final_error,
            converged,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp_plan::PlanStrategy;
    use admm::constraints;
    use sptensor::gen::{planted, PlantedConfig};

    fn tensor() -> CooTensor {
        planted(&PlantedConfig::small()).unwrap()
    }

    #[test]
    fn pgd_decreases_error_and_respects_constraints() {
        let t = tensor();
        let fz = Factorizer::new(6).constrain_all(constraints::nonneg());
        let res = pgd_factorize(
            &t,
            &fz,
            &PgdConfig {
                rank: 6,
                max_outer: 25,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let errs: Vec<f64> = res.trace.iterations.iter().map(|i| i.rel_error).collect();
        assert!(errs.last().unwrap() < &errs[0], "{errs:?}");
        for m in 0..3 {
            assert!(res.model.factor(m).as_slice().iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn aoadmm_converges_at_least_as_well_per_outer_iteration() {
        // The motivation for AO-ADMM over first-order methods: with the
        // same outer budget, AO-ADMM's exact-ish subproblem solves reach
        // a lower (or equal) error.
        let t = tensor();
        let outers = 12;
        let fz = Factorizer::new(6)
            .constrain_all(constraints::nonneg())
            .max_outer(outers)
            .tolerance(0.0)
            .seed(2);
        let admm_res = fz.factorize(&t).unwrap();
        let pgd_res = pgd_factorize(
            &t,
            &fz,
            &PgdConfig {
                rank: 6,
                max_outer: outers,
                tol: 0.0,
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            admm_res.trace.final_error <= pgd_res.trace.final_error + 0.02,
            "AO-ADMM {} vs PGD {}",
            admm_res.trace.final_error,
            pgd_res.trace.final_error
        );
    }

    #[test]
    fn pgd_dimtree_matches_per_mode() {
        let t = tensor();
        let fz = Factorizer::new(6).constrain_all(constraints::nonneg());
        let cfg = PgdConfig {
            rank: 6,
            max_outer: 10,
            seed: 4,
            ..Default::default()
        };
        let flat = pgd_factorize(&t, &fz, &cfg).unwrap();
        let tree = pgd_factorize(
            &t,
            &fz,
            &PgdConfig {
                use_dimtree: true,
                ..cfg
            },
        )
        .unwrap();
        assert!(
            (flat.trace.final_error - tree.trace.final_error).abs() < 1e-7,
            "flat {} vs tree {}",
            flat.trace.final_error,
            tree.trace.final_error
        );
        let last = tree.trace.iterations.last().unwrap();
        assert!(last
            .modes
            .iter()
            .all(|r| r.mttkrp_strategy == Some(PlanStrategy::DimTree)));
        assert!(
            last.modes.iter().any(|r| r.slab_hits > 0),
            "steady state should reuse slabs"
        );
    }

    #[test]
    fn pgd_alto_matches_per_mode() {
        let t = tensor();
        let fz = Factorizer::new(6).constrain_all(constraints::nonneg());
        let cfg = PgdConfig {
            rank: 6,
            max_outer: 10,
            seed: 4,
            ..Default::default()
        };
        let flat = pgd_factorize(&t, &fz, &cfg).unwrap();
        let alto = pgd_factorize(
            &t,
            &fz,
            &PgdConfig {
                csf_policy: Some(CsfPolicy::Alto),
                ..cfg
            },
        )
        .unwrap();
        assert!(
            (flat.trace.final_error - alto.trace.final_error).abs() < 1e-7,
            "flat {} vs alto {}",
            flat.trace.final_error,
            alto.trace.final_error
        );
        let last = alto.trace.iterations.last().unwrap();
        assert!(last
            .modes
            .iter()
            .all(|r| r.mttkrp_strategy == Some(PlanStrategy::Alto)));
    }

    #[test]
    fn lipschitz_bound_dominates_spectral_norm() {
        // For the PSD matrices here, ||G||_2 <= max row sum; verify the
        // bound against the Rayleigh quotient of a few random vectors.
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let w = DMat::random(12, 6, -1.0, 1.0, &mut rng);
        let g = w.gram();
        let bound = lipschitz_bound(&g);
        for probe in 0..5 {
            let v = DMat::random(1, 6, -1.0, 1.0, &mut ChaCha8Rng::seed_from_u64(probe));
            let gv = g.matmul(&v.transpose()).unwrap();
            let num = vecops::norm_sq(gv.as_slice()).sqrt();
            let den = vecops::norm_sq(v.as_slice()).sqrt();
            assert!(num / den <= bound + 1e-9);
        }
    }

    #[test]
    fn pgd_validates_config() {
        let t = tensor();
        let fz = Factorizer::new(4);
        assert!(pgd_factorize(
            &t,
            &fz,
            &PgdConfig {
                rank: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(pgd_factorize(
            &t,
            &fz,
            &PgdConfig {
                step_safety: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(pgd_factorize(
            &t,
            &fz,
            &PgdConfig {
                inner_steps: 0,
                ..Default::default()
            }
        )
        .is_err());
    }
}
