//! Dynamic factor-sparsity management.
//!
//! Factor matrices of constrained factorizations evolve toward sparsity
//! as outer iterations proceed (non-negativity projects entries to exact
//! zero; l1 soft-thresholds them). Unlike the tensor, whose pattern is
//! static, the factors' patterns change every iteration, so the decision
//! to use a compressed representation — and the `O(K*F)` snapshot build —
//! must be re-made per use (Section IV-C of the paper).
//!
//! The paper empirically treats a factor as gainfully sparse below 20 %
//! density, and leaves automatic *structure* selection (CSR vs. hybrid)
//! to future work; [`choose_structure`] implements the heuristic the
//! paper's Table II data suggests: hybrid wins on shorter modes (Reddit),
//! plain CSR on very long modes (Amazon) where the dense panel's extra
//! bandwidth dominates.

use crate::mttkrp_sparse::LeafRepr;
use splinalg::DMat;

/// Which compressed structure to use for a sparse leaf factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// Plain dense reads (paper's DENSE baseline).
    Dense,
    /// Compressed sparse row snapshot (paper's CSR).
    Csr,
    /// Hybrid dense-panel + CSR snapshot (paper's CSR-H).
    Hybrid,
}

/// How the driver picks the leaf-factor structure each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureChoice {
    /// Pick per-iteration via [`choose_structure`] (our extension of the
    /// paper's future-work item).
    Auto,
    /// Always use the given structure (when below the density threshold).
    Force(Structure),
}

/// Configuration of dynamic sparsity exploitation.
#[derive(Debug, Clone, Copy)]
pub struct SparsityConfig {
    /// Master switch; when false every MTTKRP reads dense factors.
    pub enabled: bool,
    /// Structure selection policy.
    pub choice: StructureChoice,
    /// Use a compressed structure only below this density (paper: 0.2).
    pub density_threshold: f64,
    /// Entries with magnitude <= this are treated as zero when measuring
    /// density and building snapshots (prox operators produce exact
    /// zeros, so 0.0 is the right default).
    pub zero_tol: f64,
}

impl Default for SparsityConfig {
    fn default() -> Self {
        SparsityConfig {
            enabled: true,
            choice: StructureChoice::Auto,
            density_threshold: 0.2,
            zero_tol: 0.0,
        }
    }
}

impl SparsityConfig {
    /// Disable sparsity exploitation entirely (paper's DENSE baseline).
    pub fn disabled() -> Self {
        SparsityConfig {
            enabled: false,
            ..Default::default()
        }
    }

    /// Always use `structure` when the density threshold is met.
    pub fn force(structure: Structure) -> Self {
        SparsityConfig {
            choice: StructureChoice::Force(structure),
            ..Default::default()
        }
    }
}

/// Pick CSR vs. hybrid for a sparse factor of the given shape.
///
/// Rationale from Table II: the hybrid structure pays a dense panel of
/// `nrows * ndense_cols` extra bandwidth to remove per-row latency. On
/// Reddit (longest mode 510 K) it won; on Amazon (longest mode 4.8 M,
/// over thirty times longer) it lost. We therefore switch to plain CSR
/// when the mode is long (panel bandwidth dominates) and prefer hybrid on
/// shorter modes.
pub fn choose_structure(nrows: usize, ncols: usize, density: f64) -> Structure {
    let _ = ncols;
    // Long modes: the hybrid's dense panel is pure overhead at scale.
    const LONG_MODE_ROWS: usize = 1_000_000;
    if nrows >= LONG_MODE_ROWS {
        return Structure::Csr;
    }
    // Extremely sparse factors have few "dense" columns to exploit.
    if density < 0.01 {
        return Structure::Csr;
    }
    Structure::Hybrid
}

/// Decision record for one MTTKRP invocation (traced by the driver).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityDecision {
    /// Measured density of the leaf factor.
    pub density: f64,
    /// Structure chosen.
    pub structure: Structure,
}

/// Measure the leaf factor and build the snapshot the kernel should use.
///
/// `constraint_induces_sparsity` short-circuits the density measurement
/// for constraints that never produce zeros (the factor stays dense, so
/// the `O(K*F)` pass would be wasted every iteration).
pub fn prepare_leaf(
    factor: &DMat,
    constraint_induces_sparsity: bool,
    cfg: &SparsityConfig,
) -> (LeafRepr, SparsityDecision) {
    if !cfg.enabled || !constraint_induces_sparsity {
        return (
            LeafRepr::Dense,
            SparsityDecision {
                density: 1.0,
                structure: Structure::Dense,
            },
        );
    }
    let density = factor.density(cfg.zero_tol);
    if density >= cfg.density_threshold {
        return (
            LeafRepr::Dense,
            SparsityDecision {
                density,
                structure: Structure::Dense,
            },
        );
    }
    let structure = match cfg.choice {
        StructureChoice::Auto => choose_structure(factor.nrows(), factor.ncols(), density),
        StructureChoice::Force(s) => s,
    };
    (
        LeafRepr::build(structure, factor, cfg.zero_tol),
        SparsityDecision { density, structure },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_factor(rows: usize, cols: usize, density: f64) -> DMat {
        let mut m = DMat::zeros(rows, cols);
        let keep = (rows * cols) as f64 * density;
        let mut placed = 0.0;
        'outer: for i in 0..rows {
            for j in 0..cols {
                if placed >= keep {
                    break 'outer;
                }
                m.set(i, j, 1.0);
                placed += 1.0;
            }
        }
        m
    }

    #[test]
    fn default_config_matches_paper() {
        let c = SparsityConfig::default();
        assert!(c.enabled);
        assert_eq!(c.density_threshold, 0.2);
        assert_eq!(c.choice, StructureChoice::Auto);
    }

    #[test]
    fn disabled_always_dense() {
        let f = sparse_factor(100, 10, 0.05);
        let (repr, d) = prepare_leaf(&f, true, &SparsityConfig::disabled());
        assert!(matches!(repr, LeafRepr::Dense));
        assert_eq!(d.structure, Structure::Dense);
    }

    #[test]
    fn non_sparsifying_constraint_skips_measurement() {
        let f = sparse_factor(100, 10, 0.01);
        let (repr, d) = prepare_leaf(&f, false, &SparsityConfig::default());
        assert!(matches!(repr, LeafRepr::Dense));
        assert_eq!(d.density, 1.0); // not measured
    }

    #[test]
    fn dense_factor_stays_dense() {
        let f = sparse_factor(50, 8, 0.9);
        let (repr, d) = prepare_leaf(&f, true, &SparsityConfig::default());
        assert!(matches!(repr, LeafRepr::Dense));
        assert!(d.density > 0.2);
    }

    #[test]
    fn sparse_factor_gets_compressed() {
        let f = sparse_factor(200, 10, 0.05);
        let (repr, d) = prepare_leaf(&f, true, &SparsityConfig::default());
        assert!(!matches!(repr, LeafRepr::Dense));
        assert!(d.density < 0.2);
        assert_ne!(d.structure, Structure::Dense);
    }

    #[test]
    fn forced_structure_respected() {
        let f = sparse_factor(200, 10, 0.05);
        let (repr, _) = prepare_leaf(&f, true, &SparsityConfig::force(Structure::Csr));
        assert!(matches!(repr, LeafRepr::Csr(_)));
        let (repr, _) = prepare_leaf(&f, true, &SparsityConfig::force(Structure::Hybrid));
        assert!(matches!(repr, LeafRepr::Hybrid(_)));
    }

    #[test]
    fn heuristic_prefers_csr_on_long_modes() {
        assert_eq!(choose_structure(5_000_000, 50, 0.1), Structure::Csr);
        assert_eq!(choose_structure(500_000, 50, 0.1), Structure::Hybrid);
        // Ultra-sparse: CSR regardless of length.
        assert_eq!(choose_structure(1_000, 50, 0.001), Structure::Csr);
    }

    #[test]
    fn threshold_boundary_is_exclusive() {
        // Density exactly at the threshold stays dense (strictly-below
        // semantics).
        let f = sparse_factor(10, 10, 0.2);
        let cfg = SparsityConfig::default();
        let (_, d) = prepare_leaf(&f, true, &cfg);
        assert_eq!(d.structure, Structure::Dense);
    }
}
