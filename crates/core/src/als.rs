//! Unconstrained alternating least squares (ALS) baseline.
//!
//! With no constraint (`r(·) = 0`), AO degenerates to classic CP-ALS:
//! each mode update solves the normal equations
//! `A_m (G + eps*I) = K` exactly via one Cholesky solve per row instead
//! of iterating ADMM. This is the natural speed-of-light comparison for
//! the constrained solver and is used by the harness to sanity-check
//! convergence behaviour.

use crate::config::CsfPolicy;
use crate::error::AoAdmmError;
use crate::kruskal::{relative_error_fast, KruskalModel};
use crate::sparsity::{SparsityDecision, Structure};
use crate::substrate::DenseEngine;
use crate::trace::{FactorizeTrace, IterRecord, ModeRecord};
use crate::FactorizeResult;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use splinalg::panel::{self, PANEL_ROWS};
use splinalg::{ops, Cholesky, DMat, Workspace};
use sptensor::CooTensor;
use std::time::Instant;

/// Configuration for the ALS baseline.
#[derive(Debug, Clone, Copy)]
pub struct AlsConfig {
    /// Decomposition rank.
    pub rank: usize,
    /// Cap on outer iterations.
    pub max_outer: usize,
    /// Stop when relative error improves less than this.
    pub tol: f64,
    /// Factor-initialization seed.
    pub seed: u64,
    /// Ridge added to the normal matrix for numerical stability (the
    /// Gram Hadamard product can be near-singular for collinear factors).
    pub ridge: f64,
    /// Serve MTTKRP from a dimension-tree plan ([`crate::dimtree`])
    /// instead of per-mode CSFs. Ignored for tensors with fewer than
    /// three modes, and overridden by `csf_policy` when that is set.
    pub use_dimtree: bool,
    /// Full substrate policy ([`CsfPolicy`], including `Alto` and
    /// `Auto`). `None` keeps the legacy `use_dimtree` mapping.
    pub csf_policy: Option<CsfPolicy>,
}

impl Default for AlsConfig {
    fn default() -> Self {
        AlsConfig {
            rank: 10,
            max_outer: 200,
            tol: 1e-6,
            seed: 0,
            ridge: 1e-12,
            use_dimtree: false,
            csf_policy: None,
        }
    }
}

/// Run CP-ALS on `tensor`.
pub fn als_factorize(tensor: &CooTensor, cfg: &AlsConfig) -> Result<FactorizeResult, AoAdmmError> {
    if cfg.rank == 0 || cfg.max_outer == 0 {
        return Err(AoAdmmError::Config(
            "rank and max_outer must be positive".into(),
        ));
    }
    if tensor.nnz() == 0 {
        return Err(AoAdmmError::Config("tensor has no nonzeros".into()));
    }
    let nmodes = tensor.nmodes();
    let dims = tensor.dims().to_vec();
    let t0 = Instant::now();

    // MTTKRP engine (dimension tree, per-mode CSFs, or ALTO), built
    // once and reused across every outer iteration.
    let policy = cfg.csf_policy.unwrap_or(if cfg.use_dimtree {
        CsfPolicy::DimTree
    } else {
        CsfPolicy::PerMode
    });
    let mut engine = DenseEngine::build(tensor, policy)?;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut factors: Vec<DMat> = dims
        .iter()
        .map(|&d| DMat::random(d, cfg.rank, 0.0, 1.0, &mut rng))
        .collect();
    let mut grams: Vec<DMat> = factors.iter().map(|f| f.gram()).collect();
    let xnorm_sq = tensor.norm_sq();
    // Match the initial model norm to the data norm (see driver.rs).
    let mnorm_sq = ops::model_norm_sq(&grams)?;
    if mnorm_sq > 0.0 && xnorm_sq > 0.0 {
        let scale = (xnorm_sq / mnorm_sq).powf(1.0 / (2.0 * nmodes as f64));
        for f in &mut factors {
            f.scale(scale);
        }
        grams = factors.iter().map(|f| f.gram()).collect();
    }
    let mut kbufs: Vec<DMat> = dims.iter().map(|&d| DMat::zeros(d, cfg.rank)).collect();
    // Hot-loop scratch (see driver.rs): the combined Gram buffer, the
    // in-place-refactored Cholesky, per-panel transpose scratch for the
    // panel solves and the dense-kernel workspace. All grow-once.
    let mut gram_buf = DMat::zeros(cfg.rank, cfg.rank);
    let mut chol: Option<Cholesky> = None;
    let mut tpose_pool: Vec<Vec<f64>> = Vec::new();
    let mut lin_ws = Workspace::new();
    let setup = t0.elapsed();

    let mut iterations = Vec::new();
    let mut prev_err = f64::INFINITY;
    let mut converged = false;

    for outer in 1..=cfg.max_outer {
        let mut modes = Vec::with_capacity(nmodes);
        let mut last_inner = 0.0;
        for m in 0..nmodes {
            ops::gram_hadamard_into(&grams, m, &mut gram_buf)?;
            let ridge = cfg.ridge * (1.0 + gram_buf.trace());

            let tm = Instant::now();
            let (strategy, slab_hits, slab_misses) =
                engine.mttkrp_dense(m, &factors, &mut kbufs[m])?;
            let mttkrp_time = tm.elapsed();

            // Exact solve A_m = K * (G + ridge)^-1, parallel over row
            // panels (the tall dimension). The ridge shift is applied
            // inside the factorization and the factor's buffers are
            // reused across modes and iterations.
            let ta = Instant::now();
            match chol.as_mut() {
                Some(c) => c.refactor_shifted(&gram_buf, ridge)?,
                None => chol = Some(Cholesky::factor_shifted(&gram_buf, ridge)?),
            }
            let ch = chol.as_ref().expect("factored above");
            let f = cfg.rank;
            let chunk = PANEL_ROWS * f;
            let npanels = dims[m].div_ceil(PANEL_ROWS);
            if tpose_pool.len() < npanels {
                tpose_pool.resize_with(npanels, Vec::new);
            }
            for tp in tpose_pool[..npanels].iter_mut() {
                if tp.len() < chunk {
                    tp.resize(chunk, 0.0);
                }
            }
            factors[m]
                .as_mut_slice()
                .par_chunks_mut(chunk)
                .zip(kbufs[m].as_slice().par_chunks(chunk))
                .zip(tpose_pool[..npanels].par_iter_mut())
                .for_each(|((apanel, kpanel), tp)| {
                    apanel.copy_from_slice(kpanel);
                    ch.solve_panel(apanel, &mut tp[..apanel.len()]);
                });
            let solve_time = ta.elapsed();

            engine.note_factor_changed(m);

            panel::gram_into(&factors[m], &mut lin_ws, &mut grams[m])?;
            if m == nmodes - 1 {
                last_inner = ops::inner_product(&kbufs[m], &factors[m])?;
            }
            modes.push(ModeRecord {
                mode: m,
                mttkrp_strategy: Some(strategy),
                mttkrp: mttkrp_time,
                admm: solve_time,
                admm_iterations: 1,
                admm_row_iterations: dims[m] as u64,
                inner: None,
                sparsity: SparsityDecision {
                    density: 1.0,
                    structure: Structure::Dense,
                },
                slab_hits,
                slab_misses,
            });
        }

        let model_norm_sq = ops::model_norm_sq(&grams)?;
        let rel_error = relative_error_fast(xnorm_sq, last_inner, model_norm_sq);
        iterations.push(IterRecord {
            iter: outer,
            rel_error,
            elapsed: t0.elapsed(),
            modes,
        });
        if outer > 1 && prev_err - rel_error < cfg.tol {
            converged = true;
            break;
        }
        prev_err = rel_error;
    }

    let final_error = iterations.last().map(|i| i.rel_error).unwrap_or(f64::NAN);
    // ALS has no dual state; zero duals are the correct warm start for a
    // follow-up constrained run.
    let duals: Vec<DMat> = factors
        .iter()
        .map(|f| DMat::zeros(f.nrows(), f.ncols()))
        .collect();
    let grams: Vec<DMat> = factors.iter().map(|f| f.gram()).collect();
    Ok(FactorizeResult {
        duals,
        grams,
        model: KruskalModel::new(factors),
        trace: FactorizeTrace {
            iterations,
            total: t0.elapsed(),
            setup,
            final_error,
            converged,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp_plan::PlanStrategy;
    use sptensor::gen::{planted, PlantedConfig};

    #[test]
    fn als_converges_on_planted_data() {
        let t = planted(&PlantedConfig::small()).unwrap();
        let res = als_factorize(
            &t,
            &AlsConfig {
                rank: 8,
                max_outer: 40,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // Sparse-tensor regime: zeros at unsampled cells bound the
        // reachable error well above the noise floor (cf. Figure 6).
        assert!(
            res.trace.final_error < 0.75,
            "err {}",
            res.trace.final_error
        );
        // ALS error is monotone nonincreasing.
        let errs: Vec<f64> = res.trace.iterations.iter().map(|i| i.rel_error).collect();
        for w in errs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{w:?}");
        }
    }

    #[test]
    fn als_beats_or_matches_constrained_on_unconstrained_data() {
        // Unconstrained ALS should fit at least as well per iteration as
        // nonneg AO-ADMM on the same (non-negative) data.
        let t = planted(&PlantedConfig::small()).unwrap();
        let als = als_factorize(
            &t,
            &AlsConfig {
                rank: 6,
                max_outer: 20,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let admm_res = crate::Factorizer::new(6)
            .constrain_all(admm::constraints::nonneg())
            .max_outer(20)
            .seed(3)
            .factorize(&t)
            .unwrap();
        assert!(als.trace.final_error <= admm_res.trace.final_error + 0.05);
    }

    #[test]
    fn als_validates_inputs() {
        let t = planted(&PlantedConfig::small()).unwrap();
        assert!(als_factorize(
            &t,
            &AlsConfig {
                rank: 0,
                ..Default::default()
            }
        )
        .is_err());
        let empty = CooTensor::new(vec![2, 2]).unwrap();
        assert!(als_factorize(&empty, &AlsConfig::default()).is_err());
    }

    #[test]
    fn als_dimtree_matches_per_mode() {
        let t = planted(&PlantedConfig::small()).unwrap();
        let cfg = AlsConfig {
            rank: 6,
            max_outer: 12,
            seed: 5,
            ..Default::default()
        };
        let flat = als_factorize(&t, &cfg).unwrap();
        let tree = als_factorize(
            &t,
            &AlsConfig {
                use_dimtree: true,
                ..cfg
            },
        )
        .unwrap();
        // Same math, different contraction order: errors agree to
        // round-off accumulated over the run.
        assert!(
            (flat.trace.final_error - tree.trace.final_error).abs() < 1e-7,
            "flat {} vs tree {}",
            flat.trace.final_error,
            tree.trace.final_error
        );
        let last = tree.trace.iterations.last().unwrap();
        assert!(last
            .modes
            .iter()
            .all(|r| r.mttkrp_strategy == Some(PlanStrategy::DimTree)));
        assert!(
            last.modes.iter().any(|r| r.slab_hits > 0),
            "steady state should reuse slabs"
        );
    }

    #[test]
    fn als_alto_matches_per_mode() {
        let t = planted(&PlantedConfig::small()).unwrap();
        let cfg = AlsConfig {
            rank: 6,
            max_outer: 12,
            seed: 5,
            ..Default::default()
        };
        let flat = als_factorize(&t, &cfg).unwrap();
        let alto = als_factorize(
            &t,
            &AlsConfig {
                csf_policy: Some(CsfPolicy::Alto),
                ..cfg
            },
        )
        .unwrap();
        assert!(
            (flat.trace.final_error - alto.trace.final_error).abs() < 1e-7,
            "flat {} vs alto {}",
            flat.trace.final_error,
            alto.trace.final_error
        );
        let last = alto.trace.iterations.last().unwrap();
        assert!(last
            .modes
            .iter()
            .all(|r| r.mttkrp_strategy == Some(PlanStrategy::Alto)));
    }

    #[test]
    fn als_is_deterministic() {
        let t = planted(&PlantedConfig::small()).unwrap();
        let cfg = AlsConfig {
            rank: 4,
            max_outer: 5,
            seed: 7,
            ..Default::default()
        };
        let a = als_factorize(&t, &cfg).unwrap();
        let b = als_factorize(&t, &cfg).unwrap();
        assert_eq!(a.trace.final_error, b.trace.final_error);
    }
}
