//! Analytical block-size model.
//!
//! The paper picks 50-row blocks empirically and names an analytical
//! model for choosing the block size as future work (Section VI). This
//! module implements a first-order cache-occupancy model:
//!
//! During one blocked-ADMM inner iteration a block touches four row
//! panels of width `F` — its slices of `K`, `H`, `U` plus the transient
//! solve row — and the shared `F x F` Cholesky factor. For the block to
//! stay resident across *all* of its inner iterations, those panels must
//! fit comfortably inside the per-core cache budget:
//!
//! ```text
//! 3 * B * F * 8 bytes + F^2 * 8 bytes  <=  occupancy * cache_bytes
//! ```
//!
//! Solving for `B` and clamping to sane bounds gives the suggestion. The
//! lower clamp reflects the paper's observation that tiny blocks suffer
//! call overheads and instruction-cache pressure.

/// Per-core cache budget assumed when none is provided (a conservative
/// half of a typical 1 MiB L2).
pub const DEFAULT_CACHE_BYTES: usize = 512 * 1024;

/// Fraction of the cache the working set may occupy (leaves room for the
/// factor matrix rows streamed by MTTKRP and for the tensor indices).
const OCCUPANCY: f64 = 0.5;

/// Smallest block worth dispatching (function-call and scheduling
/// overheads dominate below this).
pub const MIN_BLOCK: usize = 8;

/// Largest block the model will suggest; beyond this, convergence
/// benefits of per-block adaptivity vanish.
pub const MAX_BLOCK: usize = 4096;

/// Suggest a block size (rows) for rank `f` and a per-core cache budget.
///
/// Returns the paper's default of 50 whenever the model's answer is
/// within a factor of two of it, preferring the empirically validated
/// value when the model does not clearly disagree.
///
/// ```
/// use aoadmm::block_model::suggest_block_size;
/// // A huge rank on a tiny cache forces small blocks.
/// assert!(suggest_block_size(1000, 64 * 1024) < suggest_block_size(10, 64 * 1024));
/// ```
pub fn suggest_block_size(f: usize, cache_bytes: usize) -> usize {
    let f = f.max(1) as f64;
    let budget = OCCUPANCY * cache_bytes as f64 - f * f * 8.0;
    if budget <= 0.0 {
        // Rank so large the Cholesky factor alone busts the cache: block
        // as small as is worth dispatching.
        return MIN_BLOCK;
    }
    let b = (budget / (3.0 * f * 8.0)) as usize;
    let b = b.clamp(MIN_BLOCK, MAX_BLOCK);
    // Defer to the paper's empirical 50 when the model roughly agrees.
    if (25..=100).contains(&b) {
        50
    } else {
        b
    }
}

/// Suggest a block size using the default cache budget.
pub fn suggest_block_size_default(f: usize) -> usize {
    suggest_block_size(f, DEFAULT_CACHE_BYTES)
}

/// Estimated resident bytes for a block of `b` rows at rank `f`
/// (diagnostics; used by the ablation harness to annotate sweeps).
pub fn block_working_set(b: usize, f: usize) -> usize {
    3 * b * f * 8 + f * f * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_cache() {
        let small = suggest_block_size(50, 64 * 1024);
        let large = suggest_block_size(50, 4 * 1024 * 1024);
        assert!(large >= small);
    }

    #[test]
    fn decreases_with_rank() {
        let low_rank = suggest_block_size(10, DEFAULT_CACHE_BYTES);
        let high_rank = suggest_block_size(400, DEFAULT_CACHE_BYTES);
        assert!(low_rank >= high_rank);
    }

    #[test]
    fn clamps_apply() {
        // Gigantic rank: even one row barely fits.
        assert_eq!(suggest_block_size(10_000, 64 * 1024), MIN_BLOCK);
        // Huge cache: capped.
        assert!(suggest_block_size(4, usize::MAX / 1024) <= MAX_BLOCK);
    }

    #[test]
    fn rank50_default_cache_agrees_with_paper() {
        // At the paper's operating point the model must not contradict
        // the empirically chosen 50.
        let b = suggest_block_size_default(50);
        assert!(
            (25..=1000).contains(&b),
            "model suggests {b}, wildly off the paper's 50"
        );
    }

    #[test]
    fn working_set_formula() {
        assert_eq!(block_working_set(50, 10), 3 * 50 * 10 * 8 + 100 * 8);
    }
}
