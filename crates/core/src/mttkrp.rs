//! MTTKRP: matricized tensor times Khatri–Rao product.
//!
//! `K = X_(m) (C (*) B)` is the dominant kernel of AO-ADMM (Algorithm 2,
//! lines 5/9/13) and of unconstrained CPD alike. This module implements
//! the paper's Algorithm 3 over a CSF tensor rooted at the output mode:
//! three nested loops for third-order tensors, generalized to arbitrary
//! order by recursion over CSF levels.
//!
//! Parallelism follows SPLATT, scheduled by a precomputed
//! [`MttkrpPlan`](crate::mttkrp_plan::MttkrpPlan): the plan partitions
//! the traversal into contiguous chunks balanced by *nonzero count*
//! (prefix-sum over the CSF's fiber pointers) and picks one of two
//! strategies via a small cost model —
//!
//! * **root-parallel**: chunks of root subtrees. Because the CSF is
//!   rooted at the *output* mode, every root subtree writes a distinct
//!   output row, so threads never conflict and no locks or atomics are
//!   needed (a [`RowWriter`] makes that contract explicit).
//! * **fiber-privatized** (third-order, few or skewed roots): chunks of
//!   level-1 fibers, each accumulating into a thread-local buffer that
//!   covers only the contiguous roots the chunk touches, reduced into
//!   the output deterministically in chunk order. No locks on the hot
//!   path.
//!
//! The planned entry points (`*_planned`) take a plan built once at
//! factorization setup; the plan-free entry points remain as thin
//! wrappers that build a transient plan per call, so external callers
//! keep working.
//!
//! The kernel is generic over how the *leaf-level* factor is read
//! ([`RowScatter`]); `mttkrp_dense` reads it as a dense matrix and the
//! sparse variants in [`crate::mttkrp_sparse`] read CSR / hybrid
//! snapshots (Section IV-C), since the leaf factor is the one accessed
//! once per nonzero and dominates factor traffic.

use crate::error::AoAdmmError;
use crate::mttkrp_plan::{MttkrpPlan, PlanStrategy};
use rayon::prelude::*;
use splinalg::{vecops, CsrMatrix, DMat, HybridMat};
use sptensor::Csf;
use std::marker::PhantomData;

/// Read access pattern of the leaf-level factor during MTTKRP: scatter
/// `alpha * row(i)` into an accumulator indexed by original columns.
pub trait RowScatter: Sync {
    /// `out += alpha * self[i, :]` (scattered for sparse layouts).
    fn scatter_row(&self, i: usize, alpha: f64, out: &mut [f64]);
    /// Number of rows (bounds validation).
    fn nrows(&self) -> usize;
    /// Number of columns (bounds validation).
    fn ncols(&self) -> usize;
}

impl RowScatter for DMat {
    #[inline]
    fn scatter_row(&self, i: usize, alpha: f64, out: &mut [f64]) {
        vecops::axpy(alpha, self.row(i), out);
    }
    fn nrows(&self) -> usize {
        DMat::nrows(self)
    }
    fn ncols(&self) -> usize {
        DMat::ncols(self)
    }
}

impl RowScatter for CsrMatrix {
    #[inline]
    fn scatter_row(&self, i: usize, alpha: f64, out: &mut [f64]) {
        self.scatter_axpy(i, alpha, out);
    }
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }
}

impl RowScatter for HybridMat {
    #[inline]
    fn scatter_row(&self, i: usize, alpha: f64, out: &mut [f64]) {
        self.scatter_axpy(i, alpha, out);
    }
    fn nrows(&self) -> usize {
        HybridMat::nrows(self)
    }
    fn ncols(&self) -> usize {
        HybridMat::ncols(self)
    }
}

/// Raw-pointer view of a matrix whose rows are written concurrently at
/// *provably disjoint* indices (each CSF root subtree owns one output
/// row).
struct RowWriter<'a> {
    data: *mut f64,
    nrows: usize,
    ncols: usize,
    _marker: PhantomData<&'a mut f64>,
}

// SAFETY: RowWriter is only handed to the parallel traversal below, which
// writes row `fids(0)[r]` from the task that owns root `r`; root indices
// are strictly increasing and unique in a CSF, so no two tasks alias.
unsafe impl Send for RowWriter<'_> {}
unsafe impl Sync for RowWriter<'_> {}

impl<'a> RowWriter<'a> {
    fn new(m: &'a mut DMat) -> Self {
        RowWriter {
            nrows: m.nrows(),
            ncols: m.ncols(),
            data: m.as_mut_slice().as_mut_ptr(),
            _marker: PhantomData,
        }
    }

    /// # Safety
    /// `i < nrows` and no other thread may hold a reference to row `i`.
    // Returning &mut from &self is the point of this wrapper: disjoint
    // rows are handed to different tasks under the caller's aliasing
    // contract.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    unsafe fn row_mut(&self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.nrows);
        std::slice::from_raw_parts_mut(self.data.add(i * self.ncols), self.ncols)
    }
}

fn validate(
    csf: &Csf,
    factors: &[DMat],
    leaf: &dyn RowScatter,
    out: &DMat,
) -> Result<(), AoAdmmError> {
    let nmodes = csf.nmodes();
    if factors.len() != nmodes {
        return Err(AoAdmmError::Config(format!(
            "{} factors supplied for a {nmodes}-mode tensor",
            factors.len()
        )));
    }
    let f = out.ncols();
    let root_mode = csf.mode_order()[0];
    if out.nrows() != csf.dims()[root_mode] {
        return Err(AoAdmmError::Config(format!(
            "output has {} rows; root mode {} has length {}",
            out.nrows(),
            root_mode,
            csf.dims()[root_mode]
        )));
    }
    for (m, fac) in factors.iter().enumerate() {
        if m == root_mode {
            continue; // the root-mode factor is not read
        }
        if fac.ncols() != f || fac.nrows() != csf.dims()[m] {
            return Err(AoAdmmError::Config(format!(
                "factor {m} is {}x{}; expected {}x{f}",
                fac.nrows(),
                fac.ncols(),
                csf.dims()[m]
            )));
        }
    }
    let leaf_mode = *csf.mode_order().last().unwrap();
    if leaf.nrows() != csf.dims()[leaf_mode] || leaf.ncols() != f {
        return Err(AoAdmmError::Config(format!(
            "leaf factor is {}x{}; expected {}x{f}",
            leaf.nrows(),
            leaf.ncols(),
            csf.dims()[leaf_mode]
        )));
    }
    Ok(())
}

/// MTTKRP for the CSF's root mode with all factors dense.
///
/// `factors` are indexed by tensor mode; the factor of the root (output)
/// mode is not read. `out` is fully overwritten.
///
/// Builds a transient [`MttkrpPlan`] per call; loops that run many
/// MTTKRPs over the same CSF should build the plan once and call
/// [`mttkrp_dense_planned`].
pub fn mttkrp_dense(csf: &Csf, factors: &[DMat], out: &mut DMat) -> Result<(), AoAdmmError> {
    let plan = MttkrpPlan::build(csf);
    mttkrp_dense_planned(csf, &plan, factors, out)
}

/// MTTKRP for the CSF's root mode with all factors dense, scheduled by a
/// precomputed plan.
pub fn mttkrp_dense_planned(
    csf: &Csf,
    plan: &MttkrpPlan,
    factors: &[DMat],
    out: &mut DMat,
) -> Result<(), AoAdmmError> {
    let leaf_mode = *csf.mode_order().last().unwrap();
    if leaf_mode >= factors.len() {
        return Err(AoAdmmError::Config(format!(
            "{} factors supplied for a {}-mode tensor",
            factors.len(),
            csf.nmodes()
        )));
    }
    mttkrp_with_leaf_planned(csf, plan, factors, &factors[leaf_mode], out)
}

/// MTTKRP for the CSF's root mode with an explicit leaf-level factor
/// representation (dense, CSR or hybrid).
///
/// Builds a transient [`MttkrpPlan`] per call; loops that run many
/// MTTKRPs over the same CSF should build the plan once and call
/// [`mttkrp_with_leaf_planned`].
pub fn mttkrp_with_leaf<L: RowScatter>(
    csf: &Csf,
    factors: &[DMat],
    leaf: &L,
    out: &mut DMat,
) -> Result<(), AoAdmmError> {
    let plan = MttkrpPlan::build(csf);
    mttkrp_with_leaf_planned(csf, &plan, factors, leaf, out)
}

/// MTTKRP for the CSF's root mode, scheduled by a precomputed plan.
///
/// This is Algorithm 3 generalized to arbitrary order. The computation
/// for each root subtree `i` is
///
/// ```text
/// K(i,:) = sum_{level-1 nodes j} F1(j,:) .* ( ... .* (sum_leaf val * Leaf(k,:)) )
/// ```
///
/// The plan must have been built from `csf` (or a CSF of identical
/// shape); a mismatched plan is rejected.
pub fn mttkrp_with_leaf_planned<L: RowScatter>(
    csf: &Csf,
    plan: &MttkrpPlan,
    factors: &[DMat],
    leaf: &L,
    out: &mut DMat,
) -> Result<(), AoAdmmError> {
    validate(csf, factors, leaf, out)?;
    plan.check_matches(csf)?;
    let f = out.ncols();
    let nmodes = csf.nmodes();
    out.fill(0.0);

    // Factor of each non-root, non-leaf level, in level order.
    let level_factors: Vec<&DMat> = csf.mode_order()[1..nmodes - 1]
        .iter()
        .map(|&m| &factors[m])
        .collect();

    if plan.strategy() == PlanStrategy::FiberPrivatized {
        // Plan construction guarantees this strategy only for nmodes == 3.
        three_mode_fiber_privatized(csf, plan, level_factors[0], leaf, out, f);
        return Ok(());
    }

    let writer = RowWriter::new(out);
    plan.root_chunks.par_iter().for_each_init(
        // One accumulator row per intermediate level (nmodes - 2 of
        // them; zero for matrices).
        || vec![vec![0.0f64; f]; nmodes.saturating_sub(2)],
        |bufs, chunk| {
            for r in chunk.clone() {
                let out_row =
                    // SAFETY: root ids are unique and the plan's chunks
                    // partition the roots, so row fids(0)[r] is written
                    // only by the task owning the chunk containing r.
                    unsafe { writer.row_mut(csf.fids(0)[r] as usize) };
                let children = csf.fptr(0)[r]..csf.fptr(0)[r + 1];
                if nmodes == 3 {
                    // Hot path: the paper's three-loop Algorithm 3.
                    three_mode_root(csf, level_factors[0], leaf, children, &mut bufs[0], out_row);
                } else {
                    subtree_sum(csf, &level_factors, leaf, 1, children, bufs, out_row);
                }
            }
        },
    );
    Ok(())
}

/// Fiber-parallel third-order traversal for few-root or heavily skewed
/// tensors, with thread-local accumulator privatization.
///
/// Each plan chunk walks a contiguous, nnz-balanced range of fibers and
/// accumulates into a private buffer covering only the contiguous roots
/// the range touches; the per-chunk partials are then folded into the
/// output serially in chunk order. Because chunks are ordered by fiber
/// index and fibers of one root are contiguous, every output row
/// receives its fiber contributions in the same order as a sequential
/// traversal (only the association of the additions differs), and the
/// result is deterministic for a fixed plan. No locks are taken.
fn three_mode_fiber_privatized<L: RowScatter>(
    csf: &Csf,
    plan: &MttkrpPlan,
    bfac: &DMat,
    leaf: &L,
    out: &mut DMat,
    f: usize,
) {
    let fiber_root = &plan.fiber_root;
    let partials: Vec<(usize, usize, Vec<f64>)> = plan
        .fiber_chunks
        .par_iter()
        .map(|chunk| {
            let fids1 = csf.fids(1);
            let fids2 = csf.fids(2);
            let fptr1 = csf.fptr(1);
            let vals = csf.vals();
            let mut local = vec![0.0f64; (chunk.root_hi - chunk.root_lo) * f];
            let mut z = vec![0.0f64; f];
            for j in chunk.fibers.clone() {
                vecops::fill(&mut z, 0.0);
                for n in fptr1[j]..fptr1[j + 1] {
                    leaf.scatter_row(fids2[n] as usize, vals[n], &mut z);
                }
                let brow = bfac.row(fids1[j] as usize);
                let base = (fiber_root[j] as usize - chunk.root_lo) * f;
                vecops::hadamard_acc(&z, brow, &mut local[base..base + f]);
            }
            (chunk.root_lo, chunk.root_hi, local)
        })
        .collect();

    // Deterministic reduction: chunk order == fiber order.
    let fids0 = csf.fids(0);
    for (root_lo, root_hi, local) in partials {
        for (i, r) in (root_lo..root_hi).enumerate() {
            let dst = out.row_mut(fids0[r] as usize);
            vecops::axpy(1.0, &local[i * f..(i + 1) * f], dst);
        }
    }
}

/// Unrolled third-order traversal (Algorithm 3 lines 4-13).
#[inline]
fn three_mode_root<L: RowScatter>(
    csf: &Csf,
    bfac: &DMat,
    leaf: &L,
    fibers: std::ops::Range<usize>,
    z: &mut [f64],
    out_row: &mut [f64],
) {
    let fids1 = csf.fids(1);
    let fids2 = csf.fids(2);
    let fptr1 = csf.fptr(1);
    let vals = csf.vals();
    for j in fibers {
        vecops::fill(z, 0.0);
        for n in fptr1[j]..fptr1[j + 1] {
            leaf.scatter_row(fids2[n] as usize, vals[n], z);
        }
        vecops::hadamard_acc(z, bfac.row(fids1[j] as usize), out_row);
    }
}

/// Recursive traversal for orders other than 3: accumulates
/// `sum_{node in range} c_level(node)` into `target`, where
/// `c_level(node) = F_level(fid) .* sum_children c_{level+1}` and leaves
/// contribute `val * Leaf(fid,:)`.
fn subtree_sum<L: RowScatter>(
    csf: &Csf,
    level_factors: &[&DMat],
    leaf: &L,
    level: usize,
    range: std::ops::Range<usize>,
    bufs: &mut [Vec<f64>],
    target: &mut [f64],
) {
    let nmodes = csf.nmodes();
    if level == nmodes - 1 {
        let fids = csf.fids(level);
        let vals = csf.vals();
        for n in range {
            leaf.scatter_row(fids[n] as usize, vals[n], target);
        }
        return;
    }
    let fids = csf.fids(level);
    let fptr = csf.fptr(level);
    let fac = level_factors[level - 1];
    for n in range {
        let (buf, rest) = bufs.split_first_mut().expect("buffer per level");
        vecops::fill(buf, 0.0);
        subtree_sum(
            csf,
            level_factors,
            leaf,
            level + 1,
            fptr[n]..fptr[n + 1],
            rest,
            buf,
        );
        vecops::hadamard_acc(buf, fac.row(fids[n] as usize), target);
    }
}

/// Reference MTTKRP straight from the definition, iterating COO nonzeros:
/// `K(i_m, :) += val * (.*_{other modes} F(i_other, :))`.
///
/// `O(nnz * F * nmodes)`; used to validate the CSF kernels and in tests.
pub fn mttkrp_reference(
    coo: &sptensor::CooTensor,
    factors: &[DMat],
    mode: usize,
) -> Result<DMat, AoAdmmError> {
    let nmodes = coo.nmodes();
    if factors.len() != nmodes || mode >= nmodes {
        return Err(AoAdmmError::Config("bad reference MTTKRP arguments".into()));
    }
    let f = factors[0].ncols();
    let mut out = DMat::zeros(coo.dims()[mode], f);
    let mut prod = vec![0.0; f];
    for n in 0..coo.nnz() {
        for p in prod.iter_mut() {
            *p = coo.values()[n];
        }
        for (m, fac) in factors.iter().enumerate() {
            if m == mode {
                continue;
            }
            let row = fac.row(coo.mode_inds(m)[n] as usize);
            vecops::hadamard_assign(&mut prod, row);
        }
        let orow = out.row_mut(coo.mode_inds(mode)[n] as usize);
        for (o, &p) in orow.iter_mut().zip(&prod) {
            *o += p;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sptensor::gen;

    fn random_factors(dims: &[usize], f: usize, seed: u64) -> Vec<DMat> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        dims.iter()
            .map(|&d| DMat::random(d, f, -1.0, 1.0, &mut rng))
            .collect()
    }

    #[test]
    fn csf_matches_reference_three_mode_all_modes() {
        let coo = gen::random_uniform(&[12, 9, 15], 300, 1).unwrap();
        let factors = random_factors(coo.dims(), 4, 2);
        for mode in 0..3 {
            let csf = Csf::from_coo_rooted(&coo, mode).unwrap();
            let mut out = DMat::zeros(coo.dims()[mode], 4);
            mttkrp_dense(&csf, &factors, &mut out).unwrap();
            let reference = mttkrp_reference(&coo, &factors, mode).unwrap();
            assert!(
                out.max_abs_diff(&reference) < 1e-10,
                "mode {mode}: diff {}",
                out.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn csf_matches_reference_four_mode() {
        let coo = gen::random_uniform(&[6, 7, 8, 5], 250, 3).unwrap();
        let factors = random_factors(coo.dims(), 3, 4);
        for mode in 0..4 {
            let csf = Csf::from_coo_rooted(&coo, mode).unwrap();
            let mut out = DMat::zeros(coo.dims()[mode], 3);
            mttkrp_dense(&csf, &factors, &mut out).unwrap();
            let reference = mttkrp_reference(&coo, &factors, mode).unwrap();
            assert!(
                out.max_abs_diff(&reference) < 1e-10,
                "mode {mode}: diff {}",
                out.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn csf_matches_reference_two_mode_matrix() {
        // A matrix: MTTKRP reduces to sparse matrix times dense matrix.
        let coo = gen::random_uniform(&[20, 14], 80, 5).unwrap();
        let factors = random_factors(coo.dims(), 5, 6);
        for mode in 0..2 {
            let csf = Csf::from_coo_rooted(&coo, mode).unwrap();
            let mut out = DMat::zeros(coo.dims()[mode], 5);
            mttkrp_dense(&csf, &factors, &mut out).unwrap();
            let reference = mttkrp_reference(&coo, &factors, mode).unwrap();
            assert!(out.max_abs_diff(&reference) < 1e-10);
        }
    }

    #[test]
    fn reference_matches_khatri_rao_matricization() {
        // K = X_(1) (C (*) B) computed via the explicit Khatri-Rao product
        // must equal the streaming reference.
        let coo = gen::random_uniform(&[5, 4, 3], 30, 7).unwrap();
        let factors = random_factors(coo.dims(), 2, 8);
        let reference = mttkrp_reference(&coo, &factors, 0).unwrap();

        // Dense matricization X_(1) is 5 x 12 with column j*3 + k
        // (mode-1 matricization pairs (j, k) with k fastest, matching
        // khatri_rao(B, C) whose row j*K + k is B(j,:) .* C(k,:)).
        let mut kr = DMat::zeros(factors[1].nrows() * factors[2].nrows(), 2);
        splinalg::ops::khatri_rao_into(&factors[1], &factors[2], &mut kr).unwrap();
        let mut x1 = DMat::zeros(5, 12);
        for n in 0..coo.nnz() {
            let (i, j, k) = (
                coo.mode_inds(0)[n] as usize,
                coo.mode_inds(1)[n] as usize,
                coo.mode_inds(2)[n] as usize,
            );
            x1.set(i, j * 3 + k, coo.values()[n]);
        }
        let direct = x1.matmul(&kr).unwrap();
        assert!(direct.max_abs_diff(&reference) < 1e-10);
    }

    #[test]
    fn rows_without_nonzeros_stay_zero() {
        let mut coo = sptensor::CooTensor::new(vec![10, 3, 3]).unwrap();
        coo.push(&[2, 0, 0], 1.0).unwrap();
        let factors = random_factors(coo.dims(), 2, 9);
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let mut out = DMat::from_vec(10, 2, vec![9.0; 20]).unwrap(); // dirty
        mttkrp_dense(&csf, &factors, &mut out).unwrap();
        for i in 0..10 {
            if i != 2 {
                assert_eq!(out.row(i), &[0.0, 0.0], "row {i}");
            }
        }
    }

    #[test]
    fn validates_shapes() {
        let coo = gen::random_uniform(&[4, 4, 4], 20, 11).unwrap();
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let factors = random_factors(&[4, 4, 4], 3, 12);

        let mut bad_out = DMat::zeros(5, 3);
        assert!(mttkrp_dense(&csf, &factors, &mut bad_out).is_err());

        let bad_factors = random_factors(&[4, 5, 4], 3, 12);
        let mut out = DMat::zeros(4, 3);
        assert!(mttkrp_dense(&csf, &bad_factors, &mut out).is_err());

        let two = random_factors(&[4, 4], 3, 12);
        assert!(mttkrp_dense(&csf, &two, &mut out).is_err());
    }

    #[test]
    fn reference_validates_arguments() {
        let coo = gen::random_uniform(&[4, 4], 10, 1).unwrap();
        let factors = random_factors(&[4, 4], 2, 1);
        assert!(mttkrp_reference(&coo, &factors, 2).is_err());
        assert!(mttkrp_reference(&coo, &factors[..1], 0).is_err());
    }

    #[test]
    fn few_root_fiber_parallel_path_matches_reference() {
        // Patents-like: a tiny root mode with many nonzeros per slice
        // triggers the fiber-privatized path via the cost model.
        let coo = gen::random_uniform(&[3, 60, 60], 4_000, 17).unwrap();
        let factors = random_factors(coo.dims(), 6, 18);
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        assert!(csf.root_count() <= 3);
        let mut out = DMat::zeros(3, 6);
        mttkrp_dense(&csf, &factors, &mut out).unwrap();
        let reference = mttkrp_reference(&coo, &factors, 0).unwrap();
        assert!(
            out.max_abs_diff(&reference) < 1e-9,
            "diff {}",
            out.max_abs_diff(&reference)
        );
    }

    #[test]
    fn planned_kernel_matches_reference_under_both_strategies() {
        use crate::mttkrp_plan::PlanOptions;
        let coo = gen::random_uniform(&[10, 40, 50], 3_000, 19).unwrap();
        let factors = random_factors(coo.dims(), 5, 20);
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let reference = mttkrp_reference(&coo, &factors, 0).unwrap();
        for strategy in [PlanStrategy::RootParallel, PlanStrategy::FiberPrivatized] {
            let plan = MttkrpPlan::with_options(
                &csf,
                PlanOptions {
                    threads: Some(4),
                    force_strategy: Some(strategy),
                },
            );
            assert_eq!(plan.strategy(), strategy);
            let mut out = DMat::zeros(10, 5);
            mttkrp_dense_planned(&csf, &plan, &factors, &mut out).unwrap();
            assert!(
                out.max_abs_diff(&reference) < 1e-9,
                "{}: diff {}",
                strategy.name(),
                out.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn plan_is_reusable_across_calls() {
        // The whole point: one plan, many MTTKRPs (factors change, the
        // schedule does not).
        let coo = gen::random_uniform(&[20, 15, 25], 1_500, 21).unwrap();
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let plan = MttkrpPlan::build(&csf);
        for seed in [1u64, 2, 3] {
            let factors = random_factors(coo.dims(), 4, seed);
            let mut out = DMat::zeros(20, 4);
            mttkrp_dense_planned(&csf, &plan, &factors, &mut out).unwrap();
            let reference = mttkrp_reference(&coo, &factors, 0).unwrap();
            assert!(out.max_abs_diff(&reference) < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn planned_kernel_rejects_mismatched_plan() {
        let a = gen::random_uniform(&[10, 10, 10], 400, 23).unwrap();
        let b = gen::random_uniform(&[10, 10, 10], 300, 24).unwrap();
        let csf_a = Csf::from_coo_rooted(&a, 0).unwrap();
        let csf_b = Csf::from_coo_rooted(&b, 0).unwrap();
        let plan_b = MttkrpPlan::build(&csf_b);
        let factors = random_factors(a.dims(), 3, 25);
        let mut out = DMat::zeros(10, 3);
        assert!(mttkrp_dense_planned(&csf_a, &plan_b, &factors, &mut out).is_err());
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Run the same kernel under a single-thread pool and the global
        // pool; results must be bitwise comparable within fp tolerance.
        let coo = gen::random_uniform(&[40, 30, 20], 3_000, 13).unwrap();
        let factors = random_factors(coo.dims(), 8, 14);
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();

        let mut par_out = DMat::zeros(40, 8);
        mttkrp_dense(&csf, &factors, &mut par_out).unwrap();

        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let mut ser_out = DMat::zeros(40, 8);
        pool.install(|| mttkrp_dense(&csf, &factors, &mut ser_out).unwrap());

        assert!(par_out.max_abs_diff(&ser_out) < 1e-12);
    }
}
