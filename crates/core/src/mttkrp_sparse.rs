//! MTTKRP with sparse factor matrices (Section IV-C of the paper).
//!
//! When a constraint drives the leaf-level factor sparse, the kernel can
//! read it through a compressed snapshot instead of the dense array:
//!
//! * **CSR** — bandwidth scales with factor density; costs extra latency
//!   per row (three indirections).
//! * **Hybrid** — mostly-dense columns in a dense panel (streamed, with
//!   the CSR remainder prefetched), the tail in CSR; trades a little
//!   bandwidth for much better latency on skewed column patterns.
//!
//! The snapshots are rebuilt whenever used because the factor's sparsity
//! pattern evolves between outer iterations; the `O(K*F)` build is
//! amortized against the `O(F^2 * I)` ADMM and `O(F * nnz)` MTTKRP work
//! of the same iteration (paper, end of Section IV-C).

use crate::error::AoAdmmError;
use crate::mttkrp::{mttkrp_with_leaf, mttkrp_with_leaf_planned};
use crate::mttkrp_plan::MttkrpPlan;
use splinalg::{CsrMatrix, DMat, HybridMat};
use sptensor::Csf;

/// A snapshot of the leaf-level factor in the representation MTTKRP will
/// read it through.
#[derive(Debug, Clone)]
pub enum LeafRepr {
    /// Read the dense factor directly (baseline).
    Dense,
    /// Read through a CSR snapshot.
    Csr(CsrMatrix),
    /// Read through a hybrid dense+CSR snapshot.
    Hybrid(HybridMat),
}

impl LeafRepr {
    /// Short name for traces and benchmark tables (paper's DENSE / CSR /
    /// CSR-H).
    pub fn name(&self) -> &'static str {
        match self {
            LeafRepr::Dense => "DENSE",
            LeafRepr::Csr(_) => "CSR",
            LeafRepr::Hybrid(_) => "CSR-H",
        }
    }

    /// Build the requested snapshot of `factor` keeping entries with
    /// magnitude above `tol`.
    pub fn build(structure: crate::sparsity::Structure, factor: &DMat, tol: f64) -> LeafRepr {
        match structure {
            crate::sparsity::Structure::Dense => LeafRepr::Dense,
            crate::sparsity::Structure::Csr => LeafRepr::Csr(CsrMatrix::from_dense(factor, tol)),
            crate::sparsity::Structure::Hybrid => {
                LeafRepr::Hybrid(HybridMat::from_dense(factor, tol))
            }
        }
    }

    /// Run MTTKRP reading the leaf factor through this representation.
    ///
    /// `factors` supplies the root/intermediate factors (and the leaf
    /// factor itself when `self` is `Dense`). Builds a transient
    /// execution plan per call; iterative callers should hold an
    /// [`MttkrpPlan`] and use [`LeafRepr::mttkrp_planned`].
    pub fn mttkrp(&self, csf: &Csf, factors: &[DMat], out: &mut DMat) -> Result<(), AoAdmmError> {
        let plan = MttkrpPlan::build(csf);
        self.mttkrp_planned(csf, &plan, factors, out)
    }

    /// Run MTTKRP reading the leaf factor through this representation,
    /// scheduled by a precomputed plan.
    pub fn mttkrp_planned(
        &self,
        csf: &Csf,
        plan: &MttkrpPlan,
        factors: &[DMat],
        out: &mut DMat,
    ) -> Result<(), AoAdmmError> {
        match self {
            LeafRepr::Dense => crate::mttkrp::mttkrp_dense_planned(csf, plan, factors, out),
            LeafRepr::Csr(csr) => mttkrp_with_leaf_planned(csf, plan, factors, csr, out),
            LeafRepr::Hybrid(h) => mttkrp_with_leaf_planned(csf, plan, factors, h, out),
        }
    }

    /// Density of the snapshot (1.0 for `Dense`, which stores everything).
    pub fn stored_density(&self) -> f64 {
        match self {
            LeafRepr::Dense => 1.0,
            LeafRepr::Csr(c) => c.density(),
            LeafRepr::Hybrid(h) => {
                let cells = (h.nrows() * h.ncols()).max(1);
                (h.nrows() * h.num_dense_cols() + h.sparse_nnz()) as f64 / cells as f64
            }
        }
    }
}

/// Convenience: MTTKRP with an explicit CSR leaf factor.
pub fn mttkrp_csr(
    csf: &Csf,
    factors: &[DMat],
    leaf: &CsrMatrix,
    out: &mut DMat,
) -> Result<(), AoAdmmError> {
    mttkrp_with_leaf(csf, factors, leaf, out)
}

/// Convenience: MTTKRP with an explicit hybrid leaf factor.
pub fn mttkrp_hybrid(
    csf: &Csf,
    factors: &[DMat],
    leaf: &HybridMat,
    out: &mut DMat,
) -> Result<(), AoAdmmError> {
    mttkrp_with_leaf(csf, factors, leaf, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::{mttkrp_dense, mttkrp_reference};
    use crate::sparsity::Structure;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sptensor::gen;

    /// Factors where the leaf factor is sparse.
    fn sparse_leaf_factors(dims: &[usize], f: usize, seed: u64, leaf_mode: usize) -> Vec<DMat> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        dims.iter()
            .enumerate()
            .map(|(m, &d)| {
                let mut fac = DMat::random(d, f, 0.1, 1.0, &mut rng);
                if m == leaf_mode {
                    for v in fac.as_mut_slice() {
                        if rng.gen::<f64>() < 0.8 {
                            *v = 0.0;
                        }
                    }
                }
                fac
            })
            .collect()
    }

    #[test]
    fn csr_and_hybrid_match_dense_kernel() {
        let coo = gen::random_uniform(&[15, 12, 18], 500, 21).unwrap();
        for mode in 0..3 {
            let csf = sptensor::Csf::from_coo_rooted(&coo, mode).unwrap();
            let leaf_mode = *csf.mode_order().last().unwrap();
            let factors = sparse_leaf_factors(coo.dims(), 4, 22, leaf_mode);

            let mut dense_out = DMat::zeros(coo.dims()[mode], 4);
            mttkrp_dense(&csf, &factors, &mut dense_out).unwrap();

            let csr = CsrMatrix::from_dense(&factors[leaf_mode], 0.0);
            let mut csr_out = DMat::zeros(coo.dims()[mode], 4);
            mttkrp_csr(&csf, &factors, &csr, &mut csr_out).unwrap();
            assert!(
                dense_out.max_abs_diff(&csr_out) < 1e-12,
                "mode {mode} CSR diff {}",
                dense_out.max_abs_diff(&csr_out)
            );

            let hyb = HybridMat::from_dense(&factors[leaf_mode], 0.0);
            let mut hyb_out = DMat::zeros(coo.dims()[mode], 4);
            mttkrp_hybrid(&csf, &factors, &hyb, &mut hyb_out).unwrap();
            assert!(
                dense_out.max_abs_diff(&hyb_out) < 1e-12,
                "mode {mode} hybrid diff {}",
                dense_out.max_abs_diff(&hyb_out)
            );
        }
    }

    #[test]
    fn leaf_repr_dispatch_matches_reference() {
        let coo = gen::random_uniform(&[10, 8, 9], 200, 31).unwrap();
        let csf = sptensor::Csf::from_coo_rooted(&coo, 0).unwrap();
        let leaf_mode = *csf.mode_order().last().unwrap();
        let factors = sparse_leaf_factors(coo.dims(), 3, 32, leaf_mode);
        let reference = mttkrp_reference(&coo, &factors, 0).unwrap();

        for s in [Structure::Dense, Structure::Csr, Structure::Hybrid] {
            let repr = LeafRepr::build(s, &factors[leaf_mode], 0.0);
            let mut out = DMat::zeros(10, 3);
            repr.mttkrp(&csf, &factors, &mut out).unwrap();
            assert!(
                out.max_abs_diff(&reference) < 1e-10,
                "{} diff {}",
                repr.name(),
                out.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn planned_leaf_repr_matches_reference_under_both_strategies() {
        use crate::mttkrp_plan::{PlanOptions, PlanStrategy};
        // Few-root shape so the fiber strategy is meaningful.
        let coo = gen::random_uniform(&[6, 30, 40], 1_800, 61).unwrap();
        let csf = sptensor::Csf::from_coo_rooted(&coo, 0).unwrap();
        let leaf_mode = *csf.mode_order().last().unwrap();
        let factors = sparse_leaf_factors(coo.dims(), 4, 62, leaf_mode);
        let reference = mttkrp_reference(&coo, &factors, 0).unwrap();

        for strategy in [PlanStrategy::RootParallel, PlanStrategy::FiberPrivatized] {
            let plan = MttkrpPlan::with_options(
                &csf,
                PlanOptions {
                    threads: Some(4),
                    force_strategy: Some(strategy),
                },
            );
            for s in [Structure::Dense, Structure::Csr, Structure::Hybrid] {
                let repr = LeafRepr::build(s, &factors[leaf_mode], 0.0);
                let mut out = DMat::zeros(6, 4);
                repr.mttkrp_planned(&csf, &plan, &factors, &mut out)
                    .unwrap();
                assert!(
                    out.max_abs_diff(&reference) < 1e-9,
                    "{} under {}: diff {}",
                    repr.name(),
                    strategy.name(),
                    out.max_abs_diff(&reference)
                );
            }
        }
    }

    #[test]
    fn names_match_paper_labels() {
        let d = DMat::zeros(3, 2);
        assert_eq!(LeafRepr::build(Structure::Dense, &d, 0.0).name(), "DENSE");
        assert_eq!(LeafRepr::build(Structure::Csr, &d, 0.0).name(), "CSR");
        assert_eq!(LeafRepr::build(Structure::Hybrid, &d, 0.0).name(), "CSR-H");
    }

    #[test]
    fn stored_density_reflects_sparsity() {
        let mut d = DMat::zeros(10, 10);
        for i in 0..10 {
            d.set(i, 0, 1.0);
        }
        let dense = LeafRepr::build(Structure::Dense, &d, 0.0);
        let csr = LeafRepr::build(Structure::Csr, &d, 0.0);
        assert_eq!(dense.stored_density(), 1.0);
        assert!((csr.stored_density() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn four_mode_sparse_leaf() {
        let coo = gen::random_uniform(&[6, 5, 7, 8], 180, 41).unwrap();
        let csf = sptensor::Csf::from_coo_rooted(&coo, 1).unwrap();
        let leaf_mode = *csf.mode_order().last().unwrap();
        let factors = sparse_leaf_factors(coo.dims(), 3, 42, leaf_mode);
        let reference = mttkrp_reference(&coo, &factors, 1).unwrap();

        let csr = CsrMatrix::from_dense(&factors[leaf_mode], 0.0);
        let mut out = DMat::zeros(coo.dims()[1], 3);
        mttkrp_csr(&csf, &factors, &csr, &mut out).unwrap();
        assert!(out.max_abs_diff(&reference) < 1e-10);
    }
}
