//! Factorization configuration and builder.
//!
//! [`Factorizer`] is the public entry point: configure rank, per-mode
//! constraints, the ADMM strategy and the sparsity policy, then call
//! [`Factorizer::factorize`].

use crate::driver;
use crate::error::AoAdmmError;
use crate::inner::InnerSolverKind;
use crate::sparsity::SparsityConfig;
use crate::FactorizeResult;
use admm::prox::Unconstrained;
use admm::{AdmmConfig, Prox};
use aoadmm_pds::{pds_constraints, PdsConfig, PdsConstraint};
use sptensor::CooTensor;
use std::collections::HashMap;
use std::sync::Arc;

/// How many CSF representations of the tensor the driver builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsfPolicy {
    /// One CSF per mode, each rooted at its output mode (SPLATT
    /// `ALLMODE`): fastest MTTKRP, `nmodes` copies of the tensor.
    PerMode,
    /// A single CSF rooted at the shortest mode (SPLATT `ONEMODE`):
    /// one tensor copy; non-root modes use conflicting-update MTTKRP
    /// ([`crate::mttkrp_onecsf`]). Third-order tensors only — higher
    /// orders fall back to `PerMode`.
    One,
    /// A dimension-tree iteration plan ([`crate::dimtree`]): two
    /// half-tree CSFs with partial Khatri-Rao slabs memoized across
    /// modes, so each full AO sweep traverses the tensor roughly twice
    /// instead of `nmodes` times. Requires at least three modes —
    /// matrices fall back to `PerMode`.
    DimTree,
    /// The ALTO linearized substrate ([`crate::alto`]): one sorted copy
    /// of the nonzeros as bit-interleaved indices serving every mode,
    /// with SIMD delinearize+accumulate kernels. Requires the shape to
    /// linearize into 64 bits — otherwise falls back to `PerMode`.
    Alto,
    /// Pick between the other policies at setup from tensor statistics
    /// (see [`crate::mttkrp_plan::choose_policy`]): ALTO for skewed or
    /// high-order encodable tensors, a dimension tree for other
    /// higher-order tensors, per-mode CSFs otherwise. The resolved
    /// choice is observable per mode via
    /// [`crate::trace::ModeRecord::mttkrp_strategy`].
    Auto,
}

/// A per-outer-iteration progress callback (see [`Factorizer::progress`]).
pub type ProgressCallback = Arc<dyn Fn(&crate::IterRecord) + Send + Sync>;

/// Builder-style configuration for an AO-ADMM factorization.
///
/// Defaults follow the paper's evaluation: 200 outer iterations max,
/// outer tolerance `1e-6` on relative-error improvement, blocked ADMM
/// with 50-row blocks, dynamic sparsity with a 20 % density threshold.
#[derive(Clone)]
pub struct Factorizer {
    rank: usize,
    default_constraint: Arc<dyn Prox>,
    mode_constraints: HashMap<usize, Arc<dyn Prox>>,
    admm: AdmmConfig,
    inner: InnerSolverKind,
    pds: PdsConfig,
    default_pds: Option<Arc<PdsConstraint>>,
    mode_pds: HashMap<usize, Arc<PdsConstraint>>,
    max_outer: usize,
    outer_tol: f64,
    seed: u64,
    sparsity: SparsityConfig,
    csf_policy: CsfPolicy,
    progress: Option<ProgressCallback>,
}

impl Factorizer {
    /// Start configuring a rank-`rank` factorization (unconstrained by
    /// default).
    pub fn new(rank: usize) -> Self {
        Factorizer {
            rank,
            default_constraint: Arc::new(Unconstrained),
            mode_constraints: HashMap::new(),
            admm: AdmmConfig::default(),
            inner: InnerSolverKind::Admm,
            pds: PdsConfig::default(),
            default_pds: None,
            mode_pds: HashMap::new(),
            max_outer: 200,
            outer_tol: 1e-6,
            seed: 0,
            sparsity: SparsityConfig::default(),
            csf_policy: CsfPolicy::PerMode,
            progress: None,
        }
    }

    /// Apply `prox` to every mode (per-mode overrides still win).
    pub fn constrain_all(mut self, prox: Arc<dyn Prox>) -> Self {
        self.default_constraint = prox;
        self
    }

    /// Apply `prox` to one specific mode.
    pub fn constrain_mode(mut self, mode: usize, prox: Arc<dyn Prox>) -> Self {
        self.mode_constraints.insert(mode, prox);
        self
    }

    /// Configure the inner ADMM (strategy, block size, tolerance, cap).
    pub fn admm(mut self, cfg: AdmmConfig) -> Self {
        self.admm = cfg;
        self
    }

    /// Choose the inner solver run for every mode update (default: ADMM,
    /// Algorithm 1 of the source paper; [`InnerSolverKind::Pds`] swaps in
    /// the Condat–Vu primal-dual iteration, which additionally accepts
    /// composite constraints via [`Factorizer::constrain_mode_pds`]).
    pub fn inner_solver(mut self, kind: InnerSolverKind) -> Self {
        self.inner = kind;
        self
    }

    /// Configure the primal-dual inner solver (step scale, tolerance,
    /// iteration cap, block size). Only consulted when
    /// [`Factorizer::inner_solver`] selects [`InnerSolverKind::Pds`].
    pub fn pds(mut self, cfg: PdsConfig) -> Self {
        self.pds = cfg;
        self
    }

    /// Apply a composite PDS constraint to every mode (per-mode
    /// overrides still win). Requires [`InnerSolverKind::Pds`];
    /// validation rejects composite constraints under the ADMM backend.
    pub fn constrain_all_pds(mut self, c: Arc<PdsConstraint>) -> Self {
        self.default_pds = Some(c);
        self
    }

    /// Apply a composite PDS constraint to one specific mode.
    pub fn constrain_mode_pds(mut self, mode: usize, c: Arc<PdsConstraint>) -> Self {
        self.mode_pds.insert(mode, c);
        self
    }

    /// Cap on outer iterations (paper: 200).
    pub fn max_outer(mut self, n: usize) -> Self {
        self.max_outer = n;
        self
    }

    /// Outer convergence tolerance on relative-error improvement
    /// (paper: `1e-6`).
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.outer_tol = tol;
        self
    }

    /// Seed for the random factor initialization.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Configure dynamic factor-sparsity exploitation.
    pub fn sparsity(mut self, cfg: SparsityConfig) -> Self {
        self.sparsity = cfg;
        self
    }

    /// Choose between per-mode CSFs (fastest) and a single shared CSF
    /// (one tensor copy in memory).
    pub fn csf_policy(mut self, policy: CsfPolicy) -> Self {
        self.csf_policy = policy;
        self
    }

    /// Configured CSF policy.
    pub fn csf_policy_value(&self) -> CsfPolicy {
        self.csf_policy
    }

    /// Install a per-outer-iteration progress callback (invoked after
    /// each iteration's record is complete; useful for logging or
    /// early-feedback UIs on long runs).
    pub fn on_iteration<F>(mut self, f: F) -> Self
    where
        F: Fn(&crate::IterRecord) + Send + Sync + 'static,
    {
        self.progress = Some(Arc::new(f));
        self
    }

    /// The installed progress callback, if any.
    pub fn progress_callback(&self) -> Option<&ProgressCallback> {
        self.progress.as_ref()
    }

    /// The constraint in effect for `mode`.
    pub fn constraint_for(&self, mode: usize) -> &Arc<dyn Prox> {
        self.mode_constraints
            .get(&mode)
            .unwrap_or(&self.default_constraint)
    }

    /// Configured rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Configured ADMM settings.
    pub fn admm_config(&self) -> &AdmmConfig {
        &self.admm
    }

    /// Configured inner-solver backend.
    pub fn inner_solver_kind(&self) -> InnerSolverKind {
        self.inner
    }

    /// Configured PDS settings.
    pub fn pds_config(&self) -> &PdsConfig {
        &self.pds
    }

    /// The PDS constraint in effect for `mode`: an explicit composite
    /// constraint if one was set, otherwise the mode's prox constraint
    /// lifted to a prox-only PDS constraint.
    pub fn pds_constraint_for(&self, mode: usize) -> Arc<PdsConstraint> {
        if let Some(c) = self.mode_pds.get(&mode) {
            return c.clone();
        }
        if let Some(c) = &self.default_pds {
            if !self.mode_constraints.contains_key(&mode) {
                return c.clone();
            }
        }
        pds_constraints::from_prox(self.constraint_for(mode).clone())
    }

    /// Column count of mode `mode`'s dual-state matrix. ADMM duals
    /// mirror the factor (`rank` columns); a composite PDS constraint's
    /// dual lives in the operator's image (`L.out_dim(rank)` columns);
    /// prox-only PDS constraints keep a factor-shaped zero matrix the
    /// solver never touches, so warm-start plumbing stays uniform.
    pub fn dual_cols(&self, mode: usize) -> usize {
        match self.inner {
            InnerSolverKind::Admm => self.rank,
            InnerSolverKind::Pds => {
                let p = self.pds_constraint_for(mode).dual_dim(self.rank);
                if p > 0 {
                    p
                } else {
                    self.rank
                }
            }
        }
    }

    /// Configured outer-iteration cap.
    pub fn max_outer_iterations(&self) -> usize {
        self.max_outer
    }

    /// Configured outer tolerance.
    pub fn outer_tolerance(&self) -> f64 {
        self.outer_tol
    }

    /// Configured seed.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Configured sparsity policy.
    pub fn sparsity_config(&self) -> &SparsityConfig {
        &self.sparsity
    }

    /// Check configuration invariants against a tensor shape (streaming
    /// sources validate without materializing a [`CooTensor`]).
    pub fn validate_shape(&self, dims: &[usize], nnz: usize) -> Result<(), AoAdmmError> {
        if self.rank == 0 {
            return Err(AoAdmmError::Config("rank must be positive".into()));
        }
        if self.max_outer == 0 {
            return Err(AoAdmmError::Config("max_outer must be positive".into()));
        }
        if nnz == 0 {
            return Err(AoAdmmError::Config("tensor has no nonzeros".into()));
        }
        for &m in self.mode_constraints.keys() {
            if m >= dims.len() {
                return Err(AoAdmmError::Config(format!(
                    "constraint set on mode {m} of a {}-mode tensor",
                    dims.len()
                )));
            }
        }
        for &m in self.mode_pds.keys() {
            if m >= dims.len() {
                return Err(AoAdmmError::Config(format!(
                    "PDS constraint set on mode {m} of a {}-mode tensor",
                    dims.len()
                )));
            }
        }
        if self.inner == InnerSolverKind::Admm
            && (self.default_pds.is_some() || !self.mode_pds.is_empty())
        {
            return Err(AoAdmmError::Config(
                "composite PDS constraints require the PDS inner solver \
                 (Factorizer::inner_solver(InnerSolverKind::Pds))"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Check configuration invariants against a tensor.
    pub fn validate(&self, tensor: &CooTensor) -> Result<(), AoAdmmError> {
        self.validate_shape(tensor.dims(), tensor.nnz())
    }

    /// Run AO-ADMM (Algorithm 2) on `tensor`.
    pub fn factorize(&self, tensor: &CooTensor) -> Result<FactorizeResult, AoAdmmError> {
        driver::factorize(tensor, self)
    }

    /// Run AO-ADMM cold-started from any [`driver::TensorSource`]
    /// (see [`driver::factorize_source`]) — for tensors that only exist
    /// as a composed view, like the sharded source in `aoadmm-distsim`.
    pub fn factorize_source(
        &self,
        source: &dyn driver::TensorSource,
    ) -> Result<FactorizeResult, AoAdmmError> {
        driver::factorize_source(source, self)
    }

    /// Run AO-ADMM starting from an existing model (and optionally its
    /// dual state): resume a checkpoint, or refine an ALS/PGD solution
    /// under constraints.
    pub fn factorize_warm(
        &self,
        tensor: &CooTensor,
        model: crate::KruskalModel,
        duals: Option<Vec<splinalg::DMat>>,
    ) -> Result<FactorizeResult, AoAdmmError> {
        driver::factorize_warm(tensor, self, model, duals)
    }

    /// Run AO-ADMM on an already-compiled tensor representation with a
    /// full warm start (see [`driver::factorize_prepared`]) — the
    /// streaming refit entry point.
    pub fn factorize_prepared(
        &self,
        source: &dyn driver::TensorSource,
        model: crate::KruskalModel,
        duals: Option<Vec<splinalg::DMat>>,
        grams: Option<Vec<splinalg::DMat>>,
    ) -> Result<FactorizeResult, AoAdmmError> {
        driver::factorize_prepared(source, self, model, duals, grams)
    }
}

impl std::fmt::Debug for Factorizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Factorizer")
            .field("rank", &self.rank)
            .field("default_constraint", &self.default_constraint.name())
            .field("mode_constraints", &self.mode_constraints.len())
            .field("admm", &self.admm)
            .field("inner", &self.inner)
            .field("max_outer", &self.max_outer)
            .field("outer_tol", &self.outer_tol)
            .field("seed", &self.seed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use admm::constraints;

    #[test]
    fn defaults_match_paper() {
        let f = Factorizer::new(50);
        assert_eq!(f.rank(), 50);
        assert_eq!(f.max_outer_iterations(), 200);
        assert_eq!(f.outer_tolerance(), 1e-6);
        assert_eq!(f.admm_config().block_size, 50);
        assert_eq!(f.constraint_for(0).name(), "unconstrained");
    }

    #[test]
    fn per_mode_constraints_override_default() {
        let f = Factorizer::new(4)
            .constrain_all(constraints::nonneg())
            .constrain_mode(1, constraints::lasso(0.1));
        assert_eq!(f.constraint_for(0).name(), "non-negative");
        assert_eq!(f.constraint_for(1).name(), "l1");
        assert_eq!(f.constraint_for(2).name(), "non-negative");
    }

    #[test]
    fn validation_catches_bad_configs() {
        let t = sptensor::gen::random_uniform(&[5, 5], 10, 1).unwrap();
        assert!(Factorizer::new(0).validate(&t).is_err());
        assert!(Factorizer::new(2).max_outer(0).validate(&t).is_err());
        assert!(Factorizer::new(2)
            .constrain_mode(7, constraints::nonneg())
            .validate(&t)
            .is_err());
        assert!(Factorizer::new(2).validate(&t).is_ok());

        let empty = sptensor::CooTensor::new(vec![3, 3]).unwrap();
        assert!(Factorizer::new(2).validate(&empty).is_err());
    }

    #[test]
    fn debug_impl_prints_constraint_name() {
        let f = Factorizer::new(3).constrain_all(constraints::simplex());
        let s = format!("{f:?}");
        assert!(s.contains("row-simplex"));
    }
}
