//! Dimension-tree MTTKRP: memoized partial Khatri–Rao slabs shared
//! across the modes of one outer iteration.
//!
//! The per-mode kernels ([`crate::mttkrp`]) traverse the whole tensor
//! once per mode per outer iteration — `N` full traversals that each
//! recompute Khatri–Rao partial products an earlier mode already formed.
//! Following Ballard & Hayashi's dimension-tree formulation (PAPERS.md,
//! arXiv:1806.07985), an [`IterationPlan`] instead compiles the tensor
//! into **two** CSFs that split the mode set in half:
//!
//! * half A is ordered `[0 .. h-1, h .. N-1]` and *serves* modes
//!   `0 .. h-1` from its top `h` levels,
//! * half B is ordered `[h .. N-1, 0 .. h-1]` and serves the rest,
//!
//! with `h = ceil(N/2)`. For each served level the plan memoizes two
//! families of *slabs* (semi-sparse intermediates, one `rank`-row per
//! CSF node, keyed by the mode subset they contract):
//!
//! * **below-slabs** `B[l][n]` — the subtree sum under node `n`
//!   *excluding* `n`'s own factor row: the contraction of all modes at
//!   levels `l+1 .. N-1`;
//! * **above-slabs** `P[l][n]` — the Hadamard product of the ancestor
//!   factor rows of `n`: the contraction of all modes at levels
//!   `0 .. l-1`.
//!
//! The MTTKRP for the mode at level `l` is then a cheap per-node
//! combine: `out[fid(n)] += P[l][n] .* B[l][n]` (for the root level,
//! `out[fid(r)] += F_1(fid(c)) .* B[1][c]` over the root's children). In
//! the steady AO sweep each half performs **one** full-depth traversal
//! (to refresh its deepest below-slab after the other half's modes
//! changed) and the remaining modes of the half reuse it — roughly
//! halving per-iteration tensor traffic for `N >= 3`.
//!
//! **Invalidation.** Every slab records the factor modes it contracted
//! (`dep_modes`) and the logical clock at which it was built; the plan
//! bumps the clock in [`IterationPlan::note_factor_changed`]. A slab is
//! stale exactly when some dependency changed after it was built, and
//! stale slabs are recomputed lazily, deepest first — arbitrary update
//! orders (including external single-mode edits) stay correct. Reuse is
//! counted per call and surfaced as hit/miss statistics for
//! [`crate::trace::ModeRecord`].
//!
//! **Memory and determinism.** All slabs plus the traversal scratch live
//! in a [`SlabArena`] sized when the rank is first seen; steady-state
//! calls perform zero heap allocation (the per-mode path's invariant,
//! preserved). Every parallel loop runs over chunk lists frozen at plan
//! build, and every output or slab row is written by exactly one task
//! that accumulates its contributions in a fixed order — results are
//! bit-identical across thread pools for a fixed plan, and agree with
//! the per-mode oracle within the testkit tolerance policy (the
//! association of floating-point additions differs, nothing else).

use crate::config::Factorizer;
use crate::error::AoAdmmError;
use crate::mttkrp::RowScatter;
use crate::mttkrp_plan::balance_by_prefix;
use crate::mttkrp_sparse::LeafRepr;
use crate::sparsity::{prepare_leaf, SparsityDecision, Structure};
use rayon::prelude::*;
use splinalg::{vecops, DMat, SlabArena, SlabId};
use sptensor::{CooTensor, Csf};
use std::marker::PhantomData;

/// Outcome of one dimension-tree MTTKRP call.
#[derive(Debug, Clone, Copy)]
pub struct TreeMttkrp {
    /// Sparsity decision for the leaf factor read (dense when the call
    /// reused memoized slabs and never touched the leaf per nonzero).
    pub decision: SparsityDecision,
    /// Memoized slabs found valid and reused by this call.
    pub hits: u32,
    /// Slabs that were stale (or never built) and had to be recomputed.
    pub misses: u32,
}

/// One memoized slab family: a `rank`-row per node of one CSF level.
#[derive(Debug)]
struct Slab {
    /// Node count at the covered level (rows of the slab).
    rows: usize,
    /// Arena segment (`rows * rank` doubles), assigned by `size_arena`.
    id: SlabId,
    /// Clock stamp of the last rebuild; 0 = never built.
    built_at: u64,
    /// Tensor modes whose factors this slab contracted.
    dep_modes: Vec<usize>,
    /// Frozen parallel chunks over the rebuild loop's domain (nodes at
    /// `level` for below-slabs, parents at `level - 1` for above-slabs),
    /// balanced by subtree nonzeros / child counts respectively.
    chunks: Vec<std::ops::Range<usize>>,
}

/// Inverted index for serving a non-root level: nodes grouped by their
/// fiber id, so each output row is written by exactly one task.
#[derive(Debug)]
struct ServeIndex {
    /// Sorted distinct fiber ids present at the level.
    fids: Vec<u32>,
    /// Group boundaries into `nodes` (`fids.len() + 1` entries).
    fid_ptr: Vec<usize>,
    /// Node indices, grouped by fid, ascending within each group.
    nodes: Vec<u32>,
    /// Frozen chunks over fid groups, balanced by group size.
    chunks: Vec<std::ops::Range<usize>>,
}

impl ServeIndex {
    fn build(csf: &Csf, level: usize, target_chunks: usize) -> Self {
        let mut pairs: Vec<(u32, u32)> = csf
            .fids(level)
            .iter()
            .enumerate()
            .map(|(n, &f)| (f, n as u32))
            .collect();
        pairs.sort_unstable();
        let mut fids: Vec<u32> = Vec::new();
        let mut fid_ptr: Vec<usize> = Vec::new();
        let mut nodes: Vec<u32> = Vec::with_capacity(pairs.len());
        for (f, n) in pairs {
            if fids.last().copied() != Some(f) {
                fids.push(f);
                fid_ptr.push(nodes.len());
            }
            nodes.push(n);
        }
        fid_ptr.push(nodes.len());
        let chunks = balance_by_prefix(&fid_ptr, target_chunks);
        ServeIndex {
            fids,
            fid_ptr,
            nodes,
            chunks,
        }
    }
}

/// One of the two CSFs plus its memoized slabs and serve schedules.
#[derive(Debug)]
struct Half {
    csf: Csf,
    /// Number of top levels this half serves (its *home* levels).
    levels: usize,
    /// Deepest below-slab level, `max(1, levels - 1)`; rebuilt by direct
    /// tensor traversal, shallower below-slabs fold up from it.
    deep_level: usize,
    /// Accumulator rows per traversal task for the deep rebuild
    /// (`nmodes - 2 - deep_level`; one per intermediate level below).
    scratch_levels: usize,
    /// Arena segment for the deep rebuild's per-chunk scratch.
    scratch_id: SlabId,
    /// Below-slabs for levels `1 ..= deep_level` (index `l - 1`).
    b: Vec<Slab>,
    /// Above-slabs for levels `1 .. levels` (index `l - 1`).
    p: Vec<Slab>,
    /// Frozen root chunks for serving level 0, balanced by child count.
    root_serve_chunks: Vec<std::ops::Range<usize>>,
    /// Inverted serve indices for levels `1 .. levels` (index `l - 1`).
    serve: Vec<ServeIndex>,
}

impl Half {
    fn build(
        tensor: &CooTensor,
        order: &[usize],
        levels: usize,
        target_chunks: usize,
        arena: &mut SlabArena,
    ) -> Result<Self, AoAdmmError> {
        let csf = Csf::from_coo(tensor, order)?;
        let nmodes = csf.nmodes();
        let deep_level = (levels - 1).max(1);
        let scratch_levels = nmodes - 2 - deep_level;
        let mut b = Vec::with_capacity(deep_level);
        for l in 1..=deep_level {
            let off = leaf_offsets(&csf, l);
            b.push(Slab {
                rows: csf.fids(l).len(),
                id: arena.reserve(0),
                built_at: 0,
                dep_modes: csf.mode_order()[l + 1..].to_vec(),
                chunks: balance_by_prefix(&off, target_chunks),
            });
        }
        let mut p = Vec::with_capacity(levels.saturating_sub(1));
        for l in 1..levels {
            p.push(Slab {
                rows: csf.fids(l).len(),
                id: arena.reserve(0),
                built_at: 0,
                dep_modes: csf.mode_order()[..l].to_vec(),
                chunks: balance_by_prefix(csf.fptr(l - 1), target_chunks),
            });
        }
        let root_serve_chunks = balance_by_prefix(csf.fptr(0), target_chunks);
        let serve = (1..levels)
            .map(|l| ServeIndex::build(&csf, l, target_chunks))
            .collect();
        let scratch_id = arena.reserve(0);
        Ok(Half {
            csf,
            levels,
            deep_level,
            scratch_levels,
            scratch_id,
            b,
            p,
            root_serve_chunks,
            serve,
        })
    }
}

/// First-leaf offset of every node (plus one past the end) at `level`:
/// the per-node nonzero counts used to balance traversal chunks.
fn leaf_offsets(csf: &Csf, level: usize) -> Vec<usize> {
    let n = csf.fids(level).len();
    (0..=n)
        .map(|mut i| {
            for l in level..csf.nmodes() - 1 {
                i = csf.fptr(l)[i];
            }
            i
        })
        .collect()
}

/// A cross-mode MTTKRP plan: two half-tree CSFs with memoized
/// partial-MTTKRP slabs, serving every mode of the tensor.
///
/// Built once per tensor ([`IterationPlan::build`]), sized for a rank on
/// first use, and driven by alternating [`IterationPlan::mttkrp`] /
/// [`IterationPlan::note_factor_changed`] calls. See the module docs for
/// the algorithm.
#[derive(Debug)]
pub struct IterationPlan {
    dims: Vec<usize>,
    nnz: usize,
    /// Rank the arena is currently sized for (0 = not yet sized).
    rank: usize,
    halves: Vec<Half>,
    /// Mode -> (half index, level within that half's CSF).
    home: Vec<(usize, usize)>,
    /// Logical clock; bumped by `note_factor_changed`.
    clock: u64,
    /// Clock value at which each mode's factor last changed.
    last_changed: Vec<u64>,
    arena: SlabArena,
    total_hits: u64,
    total_misses: u64,
}

impl IterationPlan {
    /// Compile `tensor` into the two half-tree CSFs and their (unsized)
    /// slab layout. Rejects tensors with fewer than three modes — the
    /// tree has nothing to share there; callers fall back to the
    /// per-mode path.
    pub fn build(tensor: &CooTensor) -> Result<Self, AoAdmmError> {
        let nmodes = tensor.nmodes();
        if nmodes < 3 {
            return Err(AoAdmmError::Config(format!(
                "dimension-tree plan needs >= 3 modes, tensor has {nmodes}"
            )));
        }
        let h = nmodes.div_ceil(2);
        let order_a: Vec<usize> = (0..nmodes).collect();
        let order_b: Vec<usize> = (h..nmodes).chain(0..h).collect();
        let target_chunks = rayon::current_num_threads().max(1) * 8;
        let mut arena = SlabArena::new();
        let halves = vec![
            Half::build(tensor, &order_a, h, target_chunks, &mut arena)?,
            Half::build(tensor, &order_b, nmodes - h, target_chunks, &mut arena)?,
        ];
        let mut home = vec![(0usize, 0usize); nmodes];
        for (hi, half) in halves.iter().enumerate() {
            for l in 0..half.levels {
                home[half.csf.mode_order()[l]] = (hi, l);
            }
        }
        Ok(IterationPlan {
            dims: tensor.dims().to_vec(),
            nnz: tensor.nnz(),
            rank: 0,
            halves,
            home,
            clock: 1,
            last_changed: vec![1; nmodes],
            arena,
            total_hits: 0,
            total_misses: 0,
        })
    }

    /// Mode lengths of the compiled tensor.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes.
    pub fn nmodes(&self) -> usize {
        self.dims.len()
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Slab reuse hits accumulated over the plan's lifetime.
    pub fn total_hits(&self) -> u64 {
        self.total_hits
    }

    /// Slab rebuilds accumulated over the plan's lifetime.
    pub fn total_misses(&self) -> u64 {
        self.total_misses
    }

    /// Resident bytes of the slab arena (0 until the rank is known).
    pub fn slab_memory_bytes(&self) -> usize {
        self.arena.memory_bytes()
    }

    /// Record that `mode`'s factor matrix changed: every slab that
    /// contracted it becomes stale and will be rebuilt on next use.
    /// Drivers call this after each mode update; external callers must
    /// do the same after editing a factor in place.
    pub fn note_factor_changed(&mut self, mode: usize) {
        if mode < self.last_changed.len() {
            self.clock += 1;
            self.last_changed[mode] = self.clock;
        }
    }

    /// Grow mode lengths (streaming growth). Slabs and serve indices are
    /// per-node and indices own no nonzeros yet, so everything stays
    /// valid; new output rows are zeroed by the serve.
    pub fn grow_dims(&mut self, new_dims: &[usize]) -> Result<(), AoAdmmError> {
        for half in &mut self.halves {
            half.csf.grow_dims(new_dims)?;
        }
        self.dims = new_dims.to_vec();
        Ok(())
    }

    /// MTTKRP for `mode` under the dynamic-sparsity policy: when the
    /// call must re-traverse the tensor (deep slab rebuild), the leaf
    /// factor is read through the snapshot `cfg`'s policy chooses;
    /// otherwise only memoized slabs and mid-level rows are touched and
    /// the decision reports dense.
    pub fn mttkrp(
        &mut self,
        mode: usize,
        factors: &[DMat],
        cfg: &Factorizer,
        out: &mut DMat,
    ) -> Result<TreeMttkrp, AoAdmmError> {
        self.validate(mode, factors, out)?;
        self.ensure_rank(out.ncols());
        let (hi, level) = self.home[mode];
        let leaf_mode = *self.halves[hi].csf.mode_order().last().unwrap();
        let (leaf, decision) = if self.deep_rebuild_needed(hi, level) {
            let prox = cfg.constraint_for(leaf_mode);
            prepare_leaf(
                &factors[leaf_mode],
                prox.induces_sparsity(),
                cfg.sparsity_config(),
            )
        } else {
            (
                LeafRepr::Dense,
                SparsityDecision {
                    density: 1.0,
                    structure: Structure::Dense,
                },
            )
        };
        let (hits, misses) = match &leaf {
            LeafRepr::Dense => self.run_mode(hi, level, factors, &factors[leaf_mode], out),
            LeafRepr::Csr(csr) => self.run_mode(hi, level, factors, csr, out),
            LeafRepr::Hybrid(h) => self.run_mode(hi, level, factors, h, out),
        };
        Ok(TreeMttkrp {
            decision,
            hits,
            misses,
        })
    }

    /// MTTKRP for `mode` with every factor read dense — the ALS/PGD
    /// entry point (no sparsity policy in play).
    pub fn mttkrp_dense(
        &mut self,
        mode: usize,
        factors: &[DMat],
        out: &mut DMat,
    ) -> Result<TreeMttkrp, AoAdmmError> {
        self.validate(mode, factors, out)?;
        self.ensure_rank(out.ncols());
        let (hi, level) = self.home[mode];
        let leaf_mode = *self.halves[hi].csf.mode_order().last().unwrap();
        let (hits, misses) = self.run_mode(hi, level, factors, &factors[leaf_mode], out);
        Ok(TreeMttkrp {
            decision: SparsityDecision {
                density: 1.0,
                structure: Structure::Dense,
            },
            hits,
            misses,
        })
    }

    // ---- internals ---------------------------------------------------

    fn validate(&self, mode: usize, factors: &[DMat], out: &DMat) -> Result<(), AoAdmmError> {
        let nmodes = self.dims.len();
        if factors.len() != nmodes || mode >= nmodes {
            return Err(AoAdmmError::Config(format!(
                "{} factors / mode {mode} for a {nmodes}-mode tree plan",
                factors.len()
            )));
        }
        let f = out.ncols();
        if out.nrows() != self.dims[mode] {
            return Err(AoAdmmError::Config(format!(
                "output has {} rows; mode {mode} has length {}",
                out.nrows(),
                self.dims[mode]
            )));
        }
        for (m, fac) in factors.iter().enumerate() {
            if fac.ncols() != f || (m != mode && fac.nrows() != self.dims[m]) {
                return Err(AoAdmmError::Config(format!(
                    "factor {m} is {}x{}; expected {}x{f}",
                    fac.nrows(),
                    fac.ncols(),
                    self.dims[m]
                )));
            }
        }
        Ok(())
    }

    /// Size (or re-size) the arena for `rank`: one segment per slab plus
    /// per-half traversal scratch, reserved in a fixed order. A rank
    /// change drops all memoized contents (stamps reset to unbuilt).
    fn ensure_rank(&mut self, rank: usize) {
        if self.rank == rank {
            return;
        }
        self.arena.clear();
        for half in &mut self.halves {
            let deep_chunks = half.b[half.deep_level - 1].chunks.len();
            half.scratch_id = self.arena.reserve(deep_chunks * half.scratch_levels * rank);
            for s in half.b.iter_mut().chain(half.p.iter_mut()) {
                s.id = self.arena.reserve(s.rows * rank);
                s.built_at = 0;
            }
        }
        self.rank = rank;
    }

    fn slab_valid(&self, s: &Slab) -> bool {
        s.built_at > 0
            && s.dep_modes
                .iter()
                .all(|&m| self.last_changed[m] <= s.built_at)
    }

    /// Would serving `(hi, level)` right now trigger a full-depth tensor
    /// traversal? True iff every below-slab from the serving level down
    /// to the deep level is stale.
    fn deep_rebuild_needed(&self, hi: usize, level: usize) -> bool {
        let half = &self.halves[hi];
        (level.max(1)..=half.deep_level).all(|l| !self.slab_valid(&half.b[l - 1]))
    }

    fn run_mode<L: RowScatter>(
        &mut self,
        hi: usize,
        level: usize,
        factors: &[DMat],
        leaf: &L,
        out: &mut DMat,
    ) -> (u32, u32) {
        let mut hits = 0u32;
        let mut misses = 0u32;
        self.ensure_b(hi, level.max(1), factors, leaf, &mut hits, &mut misses);
        if level >= 1 {
            self.ensure_p(hi, level, factors, &mut hits, &mut misses);
        }
        self.serve(hi, level, factors, out);
        self.total_hits += u64::from(hits);
        self.total_misses += u64::from(misses);
        (hits, misses)
    }

    /// Make below-slab `level` of half `hi` current, rebuilding it (and,
    /// transitively, deeper below-slabs) if stale. The deepest slab is
    /// rebuilt by direct tensor traversal; shallower ones fold up from
    /// the level below.
    fn ensure_b<L: RowScatter>(
        &mut self,
        hi: usize,
        level: usize,
        factors: &[DMat],
        leaf: &L,
        hits: &mut u32,
        misses: &mut u32,
    ) {
        if self.slab_valid(&self.halves[hi].b[level - 1]) {
            *hits += 1;
            return;
        }
        *misses += 1;
        if level == self.halves[hi].deep_level {
            self.rebuild_b_deep(hi, factors, leaf);
        } else {
            self.ensure_b(hi, level + 1, factors, leaf, hits, misses);
            self.rebuild_b_shallow(hi, level, factors);
        }
        self.halves[hi].b[level - 1].built_at = self.clock;
    }

    /// Make above-slab `level` of half `hi` current (and, transitively,
    /// shallower above-slabs — `P[l]` extends `P[l-1]` by one factor).
    fn ensure_p(
        &mut self,
        hi: usize,
        level: usize,
        factors: &[DMat],
        hits: &mut u32,
        misses: &mut u32,
    ) {
        if self.slab_valid(&self.halves[hi].p[level - 1]) {
            *hits += 1;
            return;
        }
        *misses += 1;
        if level > 1 {
            self.ensure_p(hi, level - 1, factors, hits, misses);
        }
        self.rebuild_p(hi, level, factors);
        self.halves[hi].p[level - 1].built_at = self.clock;
    }

    /// Rebuild the deepest below-slab by traversing every subtree under
    /// its level: `B[n] = sum_children vec(child)` with `vec` the
    /// standard bottom-up CSF value. Parallel over frozen node chunks;
    /// each task owns its nodes' slab rows and a disjoint scratch
    /// region, so no synchronization and a fixed summation order.
    fn rebuild_b_deep<L: RowScatter>(&mut self, hi: usize, factors: &[DMat], leaf: &L) {
        let rank = self.rank;
        let half = &self.halves[hi];
        let csf = &half.csf;
        let l_deep = half.deep_level;
        let slab = &half.b[l_deep - 1];
        let per_chunk = half.scratch_levels * rank;
        let (slab_data, scratch_data) = self.arena.get_pair_mut(slab.id, half.scratch_id);
        let slab_w = SliceWriter::new(slab_data);
        let scratch_w = SliceWriter::new(scratch_data);
        let fptr = csf.fptr(l_deep);
        slab.chunks.par_iter().enumerate().for_each(|(ci, chunk)| {
            // SAFETY: chunks partition the nodes, so each task writes
            // disjoint slab rows; scratch regions are indexed by chunk
            // position and equally sized, so they are disjoint too.
            let scratch = unsafe { scratch_w.slice_mut(ci * per_chunk, per_chunk) };
            for n in chunk.clone() {
                let row = unsafe { slab_w.slice_mut(n * rank, rank) };
                vecops::fill(row, 0.0);
                below_sum(
                    csf,
                    factors,
                    leaf,
                    l_deep + 1,
                    fptr[n]..fptr[n + 1],
                    scratch,
                    rank,
                    row,
                );
            }
        });
    }

    /// Rebuild below-slab `level` from the one directly below it:
    /// `B[level][n] = sum_children F_{mode(level+1)}(fid(c)) .* B[level+1][c]`.
    fn rebuild_b_shallow(&mut self, hi: usize, level: usize, factors: &[DMat]) {
        let rank = self.rank;
        let half = &self.halves[hi];
        let csf = &half.csf;
        let slab = &half.b[level - 1];
        let deeper_id = half.b[level].id;
        let (dst, src) = self.arena.get_pair_mut(slab.id, deeper_id);
        let w = SliceWriter::new(dst);
        let src: &[f64] = src;
        let fids_child = csf.fids(level + 1);
        let fptr = csf.fptr(level);
        let fac = &factors[csf.mode_order()[level + 1]];
        slab.chunks.par_iter().for_each(|chunk| {
            for n in chunk.clone() {
                // SAFETY: chunks partition the nodes; row `n` is written
                // only by the task owning `n`'s chunk.
                let row = unsafe { w.slice_mut(n * rank, rank) };
                vecops::fill(row, 0.0);
                for c in fptr[n]..fptr[n + 1] {
                    vecops::hadamard_acc(
                        &src[c * rank..(c + 1) * rank],
                        fac.row(fids_child[c] as usize),
                        row,
                    );
                }
            }
        });
    }

    /// Rebuild above-slab `level`: each node inherits its parent's
    /// ancestor product extended by the parent's own factor row
    /// (`P[1][c] = F_{mode(0)}(fid(root))`). Parallel over frozen parent
    /// chunks; a parent's children are contiguous, so writes stay
    /// disjoint.
    fn rebuild_p(&mut self, hi: usize, level: usize, factors: &[DMat]) {
        let rank = self.rank;
        let half = &self.halves[hi];
        let csf = &half.csf;
        let slab = &half.p[level - 1];
        let fids_par = csf.fids(level - 1);
        let fptr = csf.fptr(level - 1);
        let fac = &factors[csf.mode_order()[level - 1]];
        if level == 1 {
            let w = SliceWriter::new(self.arena.get_mut(slab.id));
            slab.chunks.par_iter().for_each(|chunk| {
                for pn in chunk.clone() {
                    let frow = fac.row(fids_par[pn] as usize);
                    for c in fptr[pn]..fptr[pn + 1] {
                        // SAFETY: parents partition their contiguous
                        // child ranges across chunks.
                        unsafe { w.slice_mut(c * rank, rank) }.copy_from_slice(frow);
                    }
                }
            });
        } else {
            let shallower_id = half.p[level - 2].id;
            let (dst, src) = self.arena.get_pair_mut(slab.id, shallower_id);
            let w = SliceWriter::new(dst);
            let src: &[f64] = src;
            slab.chunks.par_iter().for_each(|chunk| {
                for pn in chunk.clone() {
                    let frow = fac.row(fids_par[pn] as usize);
                    let prow = &src[pn * rank..(pn + 1) * rank];
                    for c in fptr[pn]..fptr[pn + 1] {
                        // SAFETY: as above — contiguous disjoint child
                        // ranges per parent.
                        let row = unsafe { w.slice_mut(c * rank, rank) };
                        for t in 0..rank {
                            row[t] = prow[t] * frow[t];
                        }
                    }
                }
            });
        }
    }

    /// Combine memoized slabs into the MTTKRP output for the mode at
    /// `(hi, level)`. Every output row is written by exactly one task in
    /// a fixed order (root fids are unique; non-root levels go through
    /// the inverted fid index).
    fn serve(&mut self, hi: usize, level: usize, factors: &[DMat], out: &mut DMat) {
        let rank = self.rank;
        out.fill(0.0);
        let w = SliceWriter::new(out.as_mut_slice());
        let half = &self.halves[hi];
        let csf = &half.csf;
        if level == 0 {
            let b1 = self.arena.get(half.b[0].id);
            let fac1 = &factors[csf.mode_order()[1]];
            let fids0 = csf.fids(0);
            let fptr0 = csf.fptr(0);
            let fids1 = csf.fids(1);
            half.root_serve_chunks.par_iter().for_each(|chunk| {
                for r in chunk.clone() {
                    // SAFETY: root fids are strictly increasing and
                    // unique; each row belongs to one task.
                    let row = unsafe { w.slice_mut(fids0[r] as usize * rank, rank) };
                    for c in fptr0[r]..fptr0[r + 1] {
                        vecops::hadamard_acc(
                            &b1[c * rank..(c + 1) * rank],
                            fac1.row(fids1[c] as usize),
                            row,
                        );
                    }
                }
            });
        } else {
            let bl = self.arena.get(half.b[level - 1].id);
            let pl = self.arena.get(half.p[level - 1].id);
            let idx = &half.serve[level - 1];
            idx.chunks.par_iter().for_each(|chunk| {
                for g in chunk.clone() {
                    // SAFETY: fid groups are disjoint by construction;
                    // each output row belongs to one task.
                    let row = unsafe { w.slice_mut(idx.fids[g] as usize * rank, rank) };
                    for k in idx.fid_ptr[g]..idx.fid_ptr[g + 1] {
                        let n = idx.nodes[k] as usize;
                        vecops::hadamard_acc(
                            &pl[n * rank..(n + 1) * rank],
                            &bl[n * rank..(n + 1) * rank],
                            row,
                        );
                    }
                }
            });
        }
    }
}

/// Accumulate `sum_{node in range} vec(node)` into `target`, where
/// `vec(node) = F_{mode(level)}(fid) .* sum_children vec(child)` and
/// leaves contribute `val * Leaf(fid, :)`. `scratch` holds one
/// `rank`-row per intermediate level below `level` (flat, caller-owned
/// — no allocation).
#[allow(clippy::too_many_arguments)]
fn below_sum<L: RowScatter>(
    csf: &Csf,
    factors: &[DMat],
    leaf: &L,
    level: usize,
    range: std::ops::Range<usize>,
    scratch: &mut [f64],
    rank: usize,
    target: &mut [f64],
) {
    if level == csf.nmodes() - 1 {
        let fids = csf.fids(level);
        let vals = csf.vals();
        for n in range {
            leaf.scatter_row(fids[n] as usize, vals[n], target);
        }
        return;
    }
    let fids = csf.fids(level);
    let fptr = csf.fptr(level);
    let fac = &factors[csf.mode_order()[level]];
    for n in range {
        let (buf, rest) = scratch.split_at_mut(rank);
        vecops::fill(buf, 0.0);
        below_sum(
            csf,
            factors,
            leaf,
            level + 1,
            fptr[n]..fptr[n + 1],
            rest,
            rank,
            buf,
        );
        vecops::hadamard_acc(buf, fac.row(fids[n] as usize), target);
    }
}

/// Raw-pointer view of a flat buffer whose sub-slices are written
/// concurrently at *provably disjoint* offsets (see the SAFETY comments
/// at each use site). The dimension-tree analogue of the per-mode
/// kernel's row writer, generalized from matrix rows to arbitrary
/// disjoint ranges (slab rows, scratch regions).
struct SliceWriter<'a> {
    data: *mut f64,
    len: usize,
    _marker: PhantomData<&'a mut f64>,
}

// SAFETY: every use hands disjoint ranges to different tasks — chunk
// lists partition node/root/group domains, and scratch regions are
// indexed by chunk position.
unsafe impl Send for SliceWriter<'_> {}
unsafe impl Sync for SliceWriter<'_> {}

impl<'a> SliceWriter<'a> {
    fn new(s: &'a mut [f64]) -> Self {
        SliceWriter {
            data: s.as_mut_ptr(),
            len: s.len(),
            _marker: PhantomData,
        }
    }

    /// # Safety
    /// `start + len <= self.len` and no other thread may hold a
    /// reference overlapping `[start, start + len)`.
    // Returning &mut from &self is the point of this wrapper: disjoint
    // ranges are handed to different tasks under the caller's aliasing
    // contract.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [f64] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.data.add(start), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::mttkrp_reference;
    use sptensor::gen;

    fn random_factors(dims: &[usize], f: usize, seed: u64) -> Vec<DMat> {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        dims.iter()
            .map(|&d| DMat::random(d, f, -1.0, 1.0, &mut rng))
            .collect()
    }

    fn assert_close(a: &DMat, b: &DMat, what: &str) {
        let d = a.max_abs_diff(b);
        assert!(d < 1e-9, "{what}: max abs diff {d}");
    }

    #[test]
    fn tree_matches_reference_all_modes_orders_3_to_5() {
        for (dims, nnz) in [
            (vec![12, 9, 15], 400usize),
            (vec![8, 7, 6, 5], 350),
            (vec![6, 5, 4, 5, 3], 300),
        ] {
            let coo = gen::random_uniform(&dims, nnz, 11).unwrap();
            let factors = random_factors(&dims, 4, 12);
            let mut plan = IterationPlan::build(&coo).unwrap();
            for mode in 0..dims.len() {
                let mut out = DMat::zeros(dims[mode], 4);
                plan.mttkrp_dense(mode, &factors, &mut out).unwrap();
                let want = mttkrp_reference(&coo, &factors, mode).unwrap();
                assert_close(&out, &want, &format!("{}-mode, mode {mode}", dims.len()));
            }
        }
    }

    #[test]
    fn ao_sweep_reuses_slabs_and_stays_correct() {
        let dims = vec![10, 8, 9, 7];
        let coo = gen::random_uniform(&dims, 600, 21).unwrap();
        let mut factors = random_factors(&dims, 3, 22);
        let mut plan = IterationPlan::build(&coo).unwrap();
        let mut total_hits = 0u32;
        for sweep in 0..3 {
            for mode in 0..4 {
                let mut out = DMat::zeros(dims[mode], 3);
                let r = plan.mttkrp_dense(mode, &factors, &mut out).unwrap();
                total_hits += r.hits;
                let want = mttkrp_reference(&coo, &factors, mode).unwrap();
                assert_close(&out, &want, &format!("sweep {sweep}, mode {mode}"));
                // Simulate the mode update the driver would perform.
                factors[mode].scale(1.0 + 0.1 * (mode as f64 + 1.0));
                plan.note_factor_changed(mode);
            }
        }
        assert!(total_hits > 0, "no slab was ever reused across a sweep");
        assert_eq!(u64::from(total_hits), plan.total_hits());
    }

    #[test]
    fn stale_slabs_recompute_after_external_single_mode_update() {
        let dims = vec![9, 7, 8, 6];
        let coo = gen::random_uniform(&dims, 500, 31).unwrap();
        let mut factors = random_factors(&dims, 4, 32);
        let mut plan = IterationPlan::build(&coo).unwrap();
        // Warm every slab.
        for mode in 0..4 {
            let mut out = DMat::zeros(dims[mode], 4);
            plan.mttkrp_dense(mode, &factors, &mut out).unwrap();
        }
        // Change exactly one factor out of band, in every position.
        for changed in 0..4 {
            factors[changed].scale(-0.5);
            plan.note_factor_changed(changed);
            for mode in 0..4 {
                let mut out = DMat::zeros(dims[mode], 4);
                plan.mttkrp_dense(mode, &factors, &mut out).unwrap();
                let want = mttkrp_reference(&coo, &factors, mode).unwrap();
                assert_close(&out, &want, &format!("changed {changed}, mode {mode}"));
            }
        }
    }

    #[test]
    fn missing_note_factor_changed_serves_stale_results_by_design() {
        // The memoization contract: without note_factor_changed the plan
        // may keep serving from slabs built against the old factor.
        let dims = vec![8, 7, 6];
        let coo = gen::random_uniform(&dims, 300, 41).unwrap();
        let mut factors = random_factors(&dims, 3, 42);
        let mut plan = IterationPlan::build(&coo).unwrap();
        let mut before = DMat::zeros(dims[0], 3);
        plan.mttkrp_dense(0, &factors, &mut before).unwrap();
        factors[2].scale(3.0); // silent edit
        let mut after = DMat::zeros(dims[0], 3);
        plan.mttkrp_dense(0, &factors, &mut after).unwrap();
        assert_eq!(before.max_abs_diff(&after), 0.0, "slab should be reused");
        plan.note_factor_changed(2);
        plan.mttkrp_dense(0, &factors, &mut after).unwrap();
        let want = mttkrp_reference(&coo, &factors, 0).unwrap();
        assert_close(&after, &want, "after invalidation");
    }

    #[test]
    fn rank_change_resizes_and_stays_correct() {
        let dims = vec![7, 6, 5, 4];
        let coo = gen::random_uniform(&dims, 250, 51).unwrap();
        let mut plan = IterationPlan::build(&coo).unwrap();
        for rank in [3usize, 6, 2] {
            let factors = random_factors(&dims, rank, 52 + rank as u64);
            for mode in 0..4 {
                let mut out = DMat::zeros(dims[mode], rank);
                plan.mttkrp_dense(mode, &factors, &mut out).unwrap();
                let want = mttkrp_reference(&coo, &factors, mode).unwrap();
                assert_close(&out, &want, &format!("rank {rank}, mode {mode}"));
            }
        }
    }

    #[test]
    fn grow_dims_zeroes_new_rows() {
        let dims = vec![6, 5, 4];
        let coo = gen::random_uniform(&dims, 200, 61).unwrap();
        let mut plan = IterationPlan::build(&coo).unwrap();
        let new_dims = vec![9, 5, 7];
        plan.grow_dims(&new_dims).unwrap();
        let factors = random_factors(&new_dims, 3, 62);
        for mode in 0..3 {
            let mut out = DMat::zeros(new_dims[mode], 3);
            out.fill(5.0); // dirty
            plan.mttkrp_dense(mode, &factors, &mut out).unwrap();
            // Compare against the reference over the grown logical shape.
            let mut grown = coo.clone();
            for (m, &d) in new_dims.iter().enumerate() {
                grown.grow_mode(m, d).unwrap();
            }
            let want = mttkrp_reference(&grown, &factors, mode).unwrap();
            assert_close(&out, &want, &format!("grown mode {mode}"));
        }
    }

    #[test]
    fn rejects_fewer_than_three_modes() {
        let coo = gen::random_uniform(&[10, 8], 50, 71).unwrap();
        assert!(IterationPlan::build(&coo).is_err());
    }

    #[test]
    fn rejects_bad_shapes() {
        let dims = vec![6, 5, 4];
        let coo = gen::random_uniform(&dims, 100, 81).unwrap();
        let mut plan = IterationPlan::build(&coo).unwrap();
        let factors = random_factors(&dims, 3, 82);
        let mut bad_rows = DMat::zeros(7, 3);
        assert!(plan.mttkrp_dense(0, &factors, &mut bad_rows).is_err());
        let mut out = DMat::zeros(6, 3);
        let short: Vec<DMat> = factors[..2].to_vec();
        assert!(plan.mttkrp_dense(0, &short, &mut out).is_err());
    }
}
