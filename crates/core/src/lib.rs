//! Accelerated AO-ADMM for constrained sparse tensor factorization.
//!
//! This crate is a from-scratch Rust reproduction of
//! *Constrained Tensor Factorization with Accelerated AO-ADMM*
//! (Smith, Beri, Karypis — ICPP 2017): a shared-memory parallel framework
//! that computes a constrained/regularized CP decomposition (CPD) of a
//! sparse tensor via alternating optimization, with an ADMM inner solver
//! per factor matrix.
//!
//! The paper's two accelerations are both implemented:
//!
//! 1. **Blocked ADMM** (Section IV-B, in the [`admm`] crate): the inner
//!    solver runs independently on blocks of rows, improving convergence
//!    on skewed data, removing synchronization, and staying cache
//!    resident.
//! 2. **Sparsity-aware MTTKRP** (Section IV-C, [`mttkrp_sparse`] /
//!    [`sparsity`]): when a factor matrix becomes sparse under an l1 or
//!    non-negativity constraint, the MTTKRP kernel reads it through a CSR
//!    or hybrid dense+CSR snapshot, cutting memory traffic.
//!
//! On top of those, MTTKRP scheduling decisions (nnz-balanced chunking,
//! root-parallel vs. privatized fiber-parallel traversal) are hoisted
//! into a [`MttkrpPlan`] built once per CSF at setup and reused across
//! every outer iteration; see [`mttkrp_plan`].
//!
//! # Quickstart
//!
//! ```
//! use aoadmm::{Factorizer};
//! use admm::constraints;
//! use sptensor::gen::{planted, PlantedConfig};
//!
//! let tensor = planted(&PlantedConfig::small()).unwrap();
//! let result = Factorizer::new(8)
//!     .constrain_all(constraints::nonneg())
//!     .max_outer(20)
//!     .seed(7)
//!     .factorize(&tensor)
//!     .unwrap();
//! println!("relative error: {:.4}", result.trace.final_error);
//! assert!(result.trace.final_error < 1.0);
//! ```

#![warn(missing_docs)]

pub mod als;
pub mod alto;
pub mod block_model;
pub mod checkpoint;
pub mod config;
pub mod dimtree;
pub mod driver;
pub mod error;
pub mod inner;
pub mod kruskal;
pub mod model_io;
pub mod model_ops;
pub mod mttkrp;
pub mod mttkrp_onecsf;
pub mod mttkrp_plan;
pub mod mttkrp_sparse;
pub mod pgd;
pub mod sparsity;
pub mod substrate;
pub mod trace;

pub use alto::AltoTensor;
pub use config::{CsfPolicy, Factorizer};
pub use dimtree::{IterationPlan, TreeMttkrp};
pub use driver::{
    factorize, factorize_prepared, factorize_source, factorize_warm, init_factors, FactorizeResult,
    MttkrpInfo, PreparedTensor, TensorSource,
};
pub use error::AoAdmmError;
pub use inner::{InnerSolver, InnerSolverKind, InnerStats};
pub use kruskal::KruskalModel;
pub use mttkrp_plan::{
    build_mode_plans, choose_policy, MttkrpPlan, PlanOptions, PlanStats, PlanStrategy,
};
pub use sparsity::{SparsityConfig, SparsityDecision, Structure, StructureChoice};
pub use substrate::DenseEngine;
pub use trace::{FactorizeTrace, IterRecord, RefitRecord};

/// Convenience re-exports for the common use cases: configure, choose
/// constraints, factorize, inspect.
pub mod prelude {
    pub use crate::als::{als_factorize, AlsConfig};
    pub use crate::model_io::{load_model, load_model_for_dims, save_model};
    pub use crate::model_ops::{arrange, factor_match_score, normalize_columns};
    pub use crate::{
        CsfPolicy, FactorizeResult, Factorizer, InnerSolverKind, KruskalModel, MttkrpPlan,
        PlanStrategy, SparsityConfig, Structure,
    };
    pub use admm::{constraints, AdaptiveRho, AdmmConfig, AdmmStrategy, Prox};
    pub use aoadmm_pds::{pds_constraints, PdsConfig, PdsConstraint};
    pub use sptensor::{CooTensor, Csf};
}
