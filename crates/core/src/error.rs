//! Error type for the factorization driver.

use splinalg::LinalgError;
use sptensor::TensorError;
use std::fmt;

/// Errors raised while setting up or running a factorization.
#[derive(Debug)]
pub enum AoAdmmError {
    /// Invalid configuration (zero rank, mismatched constraint count, ...).
    Config(String),
    /// Propagated tensor-substrate error.
    Tensor(TensorError),
    /// Propagated linear-algebra error.
    Linalg(LinalgError),
}

impl fmt::Display for AoAdmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AoAdmmError::Config(msg) => write!(f, "configuration error: {msg}"),
            AoAdmmError::Tensor(e) => write!(f, "tensor error: {e}"),
            AoAdmmError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for AoAdmmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AoAdmmError::Tensor(e) => Some(e),
            AoAdmmError::Linalg(e) => Some(e),
            AoAdmmError::Config(_) => None,
        }
    }
}

impl From<TensorError> for AoAdmmError {
    fn from(e: TensorError) -> Self {
        AoAdmmError::Tensor(e)
    }
}

impl From<LinalgError> for AoAdmmError {
    fn from(e: LinalgError) -> Self {
        AoAdmmError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(AoAdmmError::Config("bad".into())
            .to_string()
            .contains("bad"));
        let t: AoAdmmError = TensorError::Invalid("x".into()).into();
        assert!(t.to_string().contains("tensor"));
        let l: AoAdmmError = LinalgError::InvalidArgument("y".into()).into();
        assert!(l.to_string().contains("linear"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let t: AoAdmmError = TensorError::Invalid("x".into()).into();
        assert!(t.source().is_some());
        assert!(AoAdmmError::Config("z".into()).source().is_none());
    }
}
