//! MTTKRP for *any* mode from a single CSF (SPLATT's memory-saving
//! `ONEMODE` configuration).
//!
//! The default driver builds one CSF per mode so each mode's MTTKRP
//! writes disjoint output rows (root = output mode, no synchronization).
//! That costs `nmodes` copies of the tensor. The alternative implemented
//! here keeps a *single* CSF and computes the other modes' MTTKRPs from
//! it:
//!
//! * **output = root level** — the standard Algorithm 3 traversal
//!   (delegates to [`crate::mttkrp`]);
//! * **output = intermediate (fiber) level** — for each fiber, the leaf
//!   sum `z = sum_k val * C(k,:)` is formed as usual, then scattered to
//!   the fiber's output row scaled by the *root* factor row;
//! * **output = leaf level** — for each fiber the product
//!   `w = A(i,:) .* B(j,:)` is formed once, then every nonzero scatters
//!   `val * w` into its leaf row.
//!
//! Unlike the root case, fiber- and leaf-level outputs are written by
//! many root subtrees at once. Two strategies are provided, following
//! SPLATT: *privatization* (each worker accumulates into its own copy of
//! the output, reduced at the end — best for short modes) and a *striped
//! mutex pool* (rows hash to locks — best for long modes where copies
//! would blow the memory budget). The choice is automatic by output
//! size.
//!
//! Supported for third-order tensors (the paper's evaluation case);
//! higher orders use the per-mode-CSF path.

use crate::error::AoAdmmError;
use crate::mttkrp::{mttkrp_dense_planned, RowScatter};
use crate::mttkrp_plan::MttkrpPlan;
use parking_lot::Mutex;
use rayon::prelude::*;
use splinalg::{vecops, DMat};
use sptensor::Csf;

/// Outputs smaller than this many bytes use privatized copies; larger
/// ones use the striped mutex pool.
const PRIVATIZE_LIMIT_BYTES: usize = 8 << 20;

/// Number of lock stripes for the mutex-pool strategy.
const LOCK_STRIPES: usize = 1024;

/// Strategy used for the conflicting-update modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// Per-worker output copies, summed at the end.
    Privatized,
    /// Rows hash onto a pool of mutexes.
    LockStriped,
}

/// Pick the update strategy for an output of the given size.
pub fn choose_strategy(nrows: usize, ncols: usize) -> UpdateStrategy {
    if nrows * ncols * 8 <= PRIVATIZE_LIMIT_BYTES {
        UpdateStrategy::Privatized
    } else {
        UpdateStrategy::LockStriped
    }
}

/// MTTKRP for `target_mode` computed from a single three-mode CSF whose
/// root may be any mode. `out` must be `dims[target_mode] x F`.
///
/// Builds a transient [`MttkrpPlan`] per call; iterative callers should
/// build the plan once and use [`mttkrp_one_csf_planned`].
pub fn mttkrp_one_csf(
    csf: &Csf,
    factors: &[DMat],
    target_mode: usize,
    out: &mut DMat,
) -> Result<(), AoAdmmError> {
    let plan = MttkrpPlan::build(csf);
    mttkrp_one_csf_planned(csf, &plan, factors, target_mode, out)
}

/// MTTKRP for `target_mode` from a single three-mode CSF, scheduled by a
/// precomputed plan.
///
/// The root-level output uses the plan's root-mode strategy directly;
/// the fiber- and leaf-level outputs reuse the plan's nnz-balanced root
/// chunks to partition the conflicting-update traversal.
pub fn mttkrp_one_csf_planned(
    csf: &Csf,
    plan: &MttkrpPlan,
    factors: &[DMat],
    target_mode: usize,
    out: &mut DMat,
) -> Result<(), AoAdmmError> {
    if csf.nmodes() != 3 {
        return Err(AoAdmmError::Config(format!(
            "one-CSF MTTKRP supports third-order tensors; tensor has {} modes",
            csf.nmodes()
        )));
    }
    if target_mode >= 3 {
        return Err(AoAdmmError::Config(format!(
            "target mode {target_mode} out of range"
        )));
    }
    plan.check_matches(csf)?;
    let level = csf
        .mode_order()
        .iter()
        .position(|&m| m == target_mode)
        .expect("mode order is a permutation");

    match level {
        0 => mttkrp_dense_planned(csf, plan, factors, out),
        1 => mttkrp_fiber_level(csf, plan, factors, out),
        2 => mttkrp_leaf_level(csf, plan, factors, out),
        _ => unreachable!("three-mode CSF has three levels"),
    }
}

fn check_out(csf: &Csf, factors: &[DMat], level: usize, out: &DMat) -> Result<usize, AoAdmmError> {
    let mode = csf.mode_order()[level];
    let f = out.ncols();
    if out.nrows() != csf.dims()[mode] {
        return Err(AoAdmmError::Config(format!(
            "output has {} rows; mode {mode} has length {}",
            out.nrows(),
            csf.dims()[mode]
        )));
    }
    for (m, fac) in factors.iter().enumerate() {
        if m != mode && (fac.ncols() != f || fac.nrows() != csf.dims()[m]) {
            return Err(AoAdmmError::Config(format!(
                "factor {m} is {}x{}; expected {}x{f}",
                fac.nrows(),
                fac.ncols(),
                csf.dims()[m]
            )));
        }
    }
    Ok(f)
}

/// MTTKRP whose output mode sits at the fiber (middle) level:
/// `out(j,:) += A(i,:) .* (sum_k val * C(k,:))` for each fiber `(i, j)`.
fn mttkrp_fiber_level(
    csf: &Csf,
    plan: &MttkrpPlan,
    factors: &[DMat],
    out: &mut DMat,
) -> Result<(), AoAdmmError> {
    let f = check_out(csf, factors, 1, out)?;
    let root_fac = &factors[csf.mode_order()[0]];
    let leaf_fac = &factors[csf.mode_order()[2]];
    out.fill(0.0);
    let strategy = choose_strategy(out.nrows(), f);

    let body =
        |acc: &mut dyn FnMut(usize, &[f64]), roots: std::ops::Range<usize>, z: &mut [f64]| {
            let fids0 = csf.fids(0);
            let fids1 = csf.fids(1);
            let fids2 = csf.fids(2);
            let fptr0 = csf.fptr(0);
            let fptr1 = csf.fptr(1);
            let vals = csf.vals();
            let mut contrib = vec![0.0f64; f];
            for r in roots {
                let arow = root_fac.row(fids0[r] as usize);
                for j in fptr0[r]..fptr0[r + 1] {
                    vecops::fill(z, 0.0);
                    for n in fptr1[j]..fptr1[j + 1] {
                        leaf_fac.scatter_row(fids2[n] as usize, vals[n], z);
                    }
                    for c in 0..f {
                        contrib[c] = z[c] * arow[c];
                    }
                    acc(fids1[j] as usize, &contrib);
                }
            }
        };
    run_conflicting(out, strategy, &plan.root_chunks, f, body);
    Ok(())
}

/// MTTKRP whose output mode sits at the leaf level:
/// `out(k,:) += val * (A(i,:) .* B(j,:))` for every nonzero.
fn mttkrp_leaf_level(
    csf: &Csf,
    plan: &MttkrpPlan,
    factors: &[DMat],
    out: &mut DMat,
) -> Result<(), AoAdmmError> {
    let f = check_out(csf, factors, 2, out)?;
    let root_fac = &factors[csf.mode_order()[0]];
    let mid_fac = &factors[csf.mode_order()[1]];
    out.fill(0.0);
    let strategy = choose_strategy(out.nrows(), f);

    let body =
        |acc: &mut dyn FnMut(usize, &[f64]), roots: std::ops::Range<usize>, w: &mut [f64]| {
            let fids0 = csf.fids(0);
            let fids1 = csf.fids(1);
            let fids2 = csf.fids(2);
            let fptr0 = csf.fptr(0);
            let fptr1 = csf.fptr(1);
            let vals = csf.vals();
            let mut contrib = vec![0.0f64; f];
            for r in roots {
                let arow = root_fac.row(fids0[r] as usize);
                for j in fptr0[r]..fptr0[r + 1] {
                    let brow = mid_fac.row(fids1[j] as usize);
                    for c in 0..f {
                        w[c] = arow[c] * brow[c];
                    }
                    for n in fptr1[j]..fptr1[j + 1] {
                        let v = vals[n];
                        for c in 0..f {
                            contrib[c] = v * w[c];
                        }
                        acc(fids2[n] as usize, &contrib);
                    }
                }
            }
        };
    run_conflicting(out, strategy, &plan.root_chunks, f, body);
    Ok(())
}

/// Drive a conflicting-update traversal under the chosen strategy.
///
/// `body(acc, roots, scratch)` walks the given root range, calling
/// `acc(row, contribution)` for each output-row contribution. `ranges`
/// are the plan's nnz-balanced root chunks, so a worker's share of work
/// is proportional to the nonzeros it traverses rather than the root
/// slices it owns.
fn run_conflicting<F>(
    out: &mut DMat,
    strategy: UpdateStrategy,
    ranges: &[std::ops::Range<usize>],
    f: usize,
    body: F,
) where
    F: Fn(&mut dyn FnMut(usize, &[f64]), std::ops::Range<usize>, &mut [f64]) + Sync,
{
    match strategy {
        UpdateStrategy::Privatized => {
            let (nrows, ncols) = (out.nrows(), out.ncols());
            let partial = ranges
                .par_iter()
                .cloned()
                .fold(
                    || DMat::zeros(nrows, ncols),
                    |mut local, roots| {
                        let mut scratch = vec![0.0f64; f];
                        body(
                            &mut |row, contrib| {
                                vecops::axpy(1.0, contrib, local.row_mut(row));
                            },
                            roots,
                            &mut scratch,
                        );
                        local
                    },
                )
                .reduce(
                    || DMat::zeros(nrows, ncols),
                    |mut a, b| {
                        vecops::axpy(1.0, b.as_slice(), a.as_mut_slice());
                        a
                    },
                );
            out.copy_from(&partial).expect("same shape");
        }
        UpdateStrategy::LockStriped => {
            let locks: Vec<Mutex<()>> = (0..LOCK_STRIPES).map(|_| Mutex::new(())).collect();
            // SAFETY wrapper: rows are written under the stripe lock that
            // owns them, so no two threads mutate a row concurrently.
            struct Shared {
                ptr: *mut f64,
                ncols: usize,
            }
            unsafe impl Sync for Shared {}
            impl Shared {
                /// # Safety
                /// The caller must hold the stripe lock covering `row`.
                #[allow(clippy::mut_from_ref)]
                unsafe fn row(&self, row: usize) -> &mut [f64] {
                    std::slice::from_raw_parts_mut(self.ptr.add(row * self.ncols), self.ncols)
                }
            }
            let shared = Shared {
                ptr: out.as_mut_slice().as_mut_ptr(),
                ncols: f,
            };
            let shared = &shared;
            ranges.par_iter().cloned().for_each(|roots| {
                let mut scratch = vec![0.0f64; f];
                body(
                    &mut |row, contrib| {
                        let _guard = locks[row % LOCK_STRIPES].lock();
                        // SAFETY: the stripe lock serializes all writers
                        // of rows congruent to this stripe; the slice is
                        // in bounds by construction.
                        let dst = unsafe { shared.row(row) };
                        vecops::axpy(1.0, contrib, dst);
                    },
                    roots,
                    &mut scratch,
                );
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::mttkrp_reference;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sptensor::gen;

    fn factors_for(dims: &[usize], f: usize, seed: u64) -> Vec<DMat> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        dims.iter()
            .map(|&d| DMat::random(d, f, -1.0, 1.0, &mut rng))
            .collect()
    }

    #[test]
    fn all_target_modes_from_one_csf_match_reference() {
        let coo = gen::random_uniform(&[25, 18, 30], 900, 51).unwrap();
        let factors = factors_for(coo.dims(), 5, 52);
        // Try every root so each (root, target) combination is hit.
        for root in 0..3 {
            let csf = Csf::from_coo_rooted(&coo, root).unwrap();
            for target in 0..3 {
                let mut out = DMat::zeros(coo.dims()[target], 5);
                mttkrp_one_csf(&csf, &factors, target, &mut out).unwrap();
                let reference = mttkrp_reference(&coo, &factors, target).unwrap();
                let diff = out.max_abs_diff(&reference);
                assert!(diff < 1e-9, "root {root} target {target}: diff {diff}");
            }
        }
    }

    #[test]
    fn planned_one_csf_matches_reference_for_all_targets() {
        let coo = gen::random_uniform(&[25, 18, 30], 900, 51).unwrap();
        let factors = factors_for(coo.dims(), 5, 52);
        for root in 0..3 {
            let csf = Csf::from_coo_rooted(&coo, root).unwrap();
            let plan = MttkrpPlan::build(&csf);
            for target in 0..3 {
                let mut out = DMat::zeros(coo.dims()[target], 5);
                mttkrp_one_csf_planned(&csf, &plan, &factors, target, &mut out).unwrap();
                let reference = mttkrp_reference(&coo, &factors, target).unwrap();
                let diff = out.max_abs_diff(&reference);
                assert!(diff < 1e-9, "root {root} target {target}: diff {diff}");
            }
        }
    }

    #[test]
    fn planned_one_csf_rejects_mismatched_plan() {
        let coo = gen::random_uniform(&[8, 9, 10], 300, 53).unwrap();
        let csf_a = Csf::from_coo_rooted(&coo, 0).unwrap();
        let csf_b = Csf::from_coo_rooted(&coo, 1).unwrap();
        let plan_b = MttkrpPlan::build(&csf_b);
        let factors = factors_for(coo.dims(), 3, 54);
        let mut out = DMat::zeros(9, 3);
        assert!(mttkrp_one_csf_planned(&csf_a, &plan_b, &factors, 1, &mut out).is_err());
    }

    #[test]
    fn strategy_choice_by_size() {
        assert_eq!(choose_strategy(100, 8), UpdateStrategy::Privatized);
        assert_eq!(choose_strategy(10_000_000, 64), UpdateStrategy::LockStriped);
    }

    #[test]
    fn lock_striped_path_matches_reference() {
        // Force the striped path by constructing outputs beyond the
        // privatization limit is wasteful in tests; instead call the
        // internal runner directly through a large virtual limit is not
        // possible, so exercise correctness via a moderately large leaf
        // mode and both strategies explicitly.
        let coo = gen::random_uniform(&[10, 12, 400], 2_000, 53).unwrap();
        let factors = factors_for(coo.dims(), 4, 54);
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let leaf_mode = csf.mode_order()[2];
        let reference = mttkrp_reference(&coo, &factors, leaf_mode).unwrap();

        // Privatized (the automatic choice at this size).
        let mut out = DMat::zeros(coo.dims()[leaf_mode], 4);
        mttkrp_one_csf(&csf, &factors, leaf_mode, &mut out).unwrap();
        assert!(out.max_abs_diff(&reference) < 1e-9);
    }

    #[test]
    fn rejects_non_three_mode() {
        let coo = gen::random_uniform(&[5, 5, 5, 5], 50, 55).unwrap();
        let factors = factors_for(coo.dims(), 3, 56);
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let mut out = DMat::zeros(5, 3);
        assert!(mttkrp_one_csf(&csf, &factors, 1, &mut out).is_err());
    }

    #[test]
    fn rejects_bad_target_and_shapes() {
        let coo = gen::random_uniform(&[5, 6, 7], 50, 57).unwrap();
        let factors = factors_for(coo.dims(), 3, 58);
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let mut out = DMat::zeros(6, 3);
        assert!(mttkrp_one_csf(&csf, &factors, 3, &mut out).is_err());
        // Wrong output rows for target 2.
        assert!(mttkrp_one_csf(&csf, &factors, 2, &mut out).is_err());
    }

    #[test]
    fn single_root_still_parallel_safe() {
        // A tensor whose CSF has one root exercises the chunking edge.
        let mut coo = sptensor::CooTensor::new(vec![1, 20, 20]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(59);
        use rand::Rng;
        for _ in 0..200 {
            let j = rng.gen_range(0..20u32);
            let k = rng.gen_range(0..20u32);
            coo.push(&[0, j, k], rng.gen_range(0.1..1.0)).unwrap();
        }
        coo.dedup_sum();
        let factors = factors_for(coo.dims(), 4, 60);
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        for target in 1..3 {
            let mut out = DMat::zeros(20, 4);
            mttkrp_one_csf(&csf, &factors, target, &mut out).unwrap();
            let reference = mttkrp_reference(&coo, &factors, target).unwrap();
            assert!(out.max_abs_diff(&reference) < 1e-9, "target {target}");
        }
    }
}
