//! The Kruskal (CP) model and the paper's quality metric.
//!
//! A rank-`F` CPD approximates the tensor as a sum of `F` outer products
//! of factor-matrix columns (Figure 1 of the paper). The quality metric
//! is the *relative error* of Section V-A:
//!
//! ```text
//! relerr = || X - [[A, B, C]] ||_F / || X ||_F
//! ```
//!
//! Evaluating the norm of the residual directly costs `O(prod(dims))`;
//! the driver instead uses the standard expansion
//!
//! ```text
//! || X - M ||^2 = ||X||^2 - 2 <X, M> + ||M||^2
//! ```
//!
//! where `<X, M>` falls out of the final mode's MTTKRP
//! (`<K, A_last>`, SPLATT's fit trick) and `||M||^2` is a Hadamard
//! product of Gram matrices — both `O(I*F)`-cheap.

use splinalg::{ops, DMat};
use sptensor::{CooTensor, Idx};

/// A CP decomposition: one factor matrix per mode, all with `rank`
/// columns. Weights are folded into the factors (no separate lambda).
#[derive(Debug, Clone)]
pub struct KruskalModel {
    factors: Vec<DMat>,
}

impl KruskalModel {
    /// Wrap factor matrices into a model.
    ///
    /// # Panics
    /// Panics if the factors have differing column counts (programming
    /// error, not data error).
    pub fn new(factors: Vec<DMat>) -> Self {
        assert!(!factors.is_empty(), "model needs at least one factor");
        let f = factors[0].ncols();
        assert!(
            factors.iter().all(|m| m.ncols() == f),
            "factor ranks disagree"
        );
        KruskalModel { factors }
    }

    /// Rank of the decomposition.
    pub fn rank(&self) -> usize {
        self.factors[0].ncols()
    }

    /// Number of modes.
    pub fn nmodes(&self) -> usize {
        self.factors.len()
    }

    /// Borrow the factor matrix of one mode.
    pub fn factor(&self, mode: usize) -> &DMat {
        &self.factors[mode]
    }

    /// Borrow all factors.
    pub fn factors(&self) -> &[DMat] {
        &self.factors
    }

    /// Consume the model, returning the factor matrices.
    pub fn into_factors(self) -> Vec<DMat> {
        self.factors
    }

    /// Model value at one coordinate:
    /// `sum_f prod_m factors[m](coord[m], f)`.
    pub fn value_at(&self, coord: &[Idx]) -> f64 {
        debug_assert_eq!(coord.len(), self.nmodes());
        let f = self.rank();
        let mut acc = 0.0;
        for r in 0..f {
            let mut p = 1.0;
            for (m, fac) in self.factors.iter().enumerate() {
                p *= fac.row(coord[m] as usize)[r];
            }
            acc += p;
        }
        acc
    }

    /// Row dimension of every mode — the shape of the tensor the model
    /// reconstructs.
    pub fn dims(&self) -> Vec<usize> {
        self.factors.iter().map(|m| m.nrows()).collect()
    }

    /// Check that the model's shape matches `dims`, with a descriptive
    /// error naming the offending mode. Call before indexing a model
    /// against coordinates drawn from a tensor of shape `dims`.
    pub fn check_dims(&self, dims: &[usize]) -> Result<(), crate::error::AoAdmmError> {
        if dims.len() != self.nmodes() {
            return Err(crate::error::AoAdmmError::Config(format!(
                "model has {} modes but {} were expected",
                self.nmodes(),
                dims.len()
            )));
        }
        for (m, (fac, &d)) in self.factors.iter().zip(dims).enumerate() {
            if fac.nrows() != d {
                return Err(crate::error::AoAdmmError::Config(format!(
                    "mode {m} factor has {} rows but dimension {d} was expected",
                    fac.nrows()
                )));
            }
        }
        Ok(())
    }

    /// L2 norm of every row of one factor. Serving layers cache these:
    /// by Cauchy–Schwarz, `|dot(row_i, w)| <= ||row_i|| * ||w||`, which
    /// bounds any query score through mode `mode` and lets a top-K scan
    /// stop early once no remaining row can beat the current heap.
    pub fn row_norms(&self, mode: usize) -> Vec<f64> {
        let fac = &self.factors[mode];
        (0..fac.nrows())
            .map(|i| fac.row(i).iter().map(|v| v * v).sum::<f64>().sqrt())
            .collect()
    }

    /// Query weight vector for a top-K scan over `free_mode`: the
    /// Hadamard product of the fixed-mode factor rows,
    /// `out[f] = prod_{m != free_mode} factors[m](coord[m], f)`
    /// (`coord[free_mode]` is ignored). The score of candidate row `i`
    /// in the free mode is then `dot(factors[free_mode].row(i), out)`,
    /// which equals [`KruskalModel::value_at`] with `coord[free_mode] = i`.
    ///
    /// # Panics
    /// Panics (debug) on arity mismatch; indexes out of bounds when a
    /// fixed coordinate exceeds its mode dimension.
    pub fn weights_into(&self, free_mode: usize, coord: &[Idx], out: &mut [f64]) {
        debug_assert_eq!(coord.len(), self.nmodes());
        debug_assert_eq!(out.len(), self.rank());
        debug_assert!(free_mode < self.nmodes());
        out.fill(1.0);
        for (m, fac) in self.factors.iter().enumerate() {
            if m == free_mode {
                continue;
            }
            for (o, &v) in out.iter_mut().zip(fac.row(coord[m] as usize)) {
                *o *= v;
            }
        }
    }

    /// `||M||_F^2` via the Gram-matrix identity (cheap).
    pub fn norm_sq(&self) -> f64 {
        let grams: Vec<DMat> = self.factors.iter().map(|m| m.gram()).collect();
        ops::model_norm_sq(&grams).expect("factors share rank by construction")
    }

    /// `<X, M>` for a sparse tensor: only the stored nonzeros contribute
    /// a nonzero product against the model *in the inner product's X
    /// weighting* — `<X, M> = sum_{nonzeros} X(c) * M(c)`.
    pub fn inner_with(&self, x: &CooTensor) -> f64 {
        let nmodes = self.nmodes();
        debug_assert_eq!(nmodes, x.nmodes());
        let f = self.rank();
        let mut total = 0.0;
        let mut prod = vec![0.0; f];
        for n in 0..x.nnz() {
            for p in prod.iter_mut() {
                *p = 1.0;
            }
            for m in 0..nmodes {
                let row = self.factors[m].row(x.mode_inds(m)[n] as usize);
                for (p, &v) in prod.iter_mut().zip(row) {
                    *p *= v;
                }
            }
            total += x.values()[n] * prod.iter().sum::<f64>();
        }
        total
    }

    /// Relative error against a sparse tensor, computed exactly:
    /// `sqrt(||X||^2 - 2<X,M> + ||M||^2) / ||X||`.
    ///
    /// This is `O(nnz * F * nmodes)` — fine for evaluation, too slow to
    /// call inside the driver loop (which uses the MTTKRP-based identity
    /// instead; see [`relative_error_fast`]).
    pub fn relative_error(&self, x: &CooTensor) -> f64 {
        let xsq = x.norm_sq();
        relative_error_fast(xsq, self.inner_with(x), self.norm_sq())
    }

    /// Density (fraction of entries with magnitude > `tol`) of each
    /// factor — the quantity reported in Table II.
    pub fn factor_densities(&self, tol: f64) -> Vec<f64> {
        self.factors.iter().map(|m| m.density(tol)).collect()
    }
}

/// Assemble the relative error from its three cheap pieces.
///
/// Clamps tiny negative residuals (floating point) to zero.
pub fn relative_error_fast(xnorm_sq: f64, inner: f64, model_norm_sq: f64) -> f64 {
    if xnorm_sq <= 0.0 {
        return 0.0;
    }
    let resid_sq = (xnorm_sq - 2.0 * inner + model_norm_sq).max(0.0);
    (resid_sq / xnorm_sq).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model(i: usize, j: usize, k: usize, f: usize, seed: u64) -> KruskalModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        KruskalModel::new(vec![
            DMat::random(i, f, 0.0, 1.0, &mut rng),
            DMat::random(j, f, 0.0, 1.0, &mut rng),
            DMat::random(k, f, 0.0, 1.0, &mut rng),
        ])
    }

    #[test]
    fn accessors() {
        let m = model(3, 4, 5, 2, 1);
        assert_eq!(m.rank(), 2);
        assert_eq!(m.nmodes(), 3);
        assert_eq!(m.factor(1).nrows(), 4);
        assert_eq!(m.factors().len(), 3);
    }

    #[test]
    #[should_panic(expected = "ranks disagree")]
    fn mismatched_ranks_panic() {
        let _ = KruskalModel::new(vec![DMat::zeros(2, 2), DMat::zeros(2, 3)]);
    }

    #[test]
    fn value_at_matches_manual_sum() {
        let m = model(2, 2, 2, 3, 2);
        let v = m.value_at(&[1, 0, 1]);
        let mut expect = 0.0;
        for r in 0..3 {
            expect += m.factor(0).get(1, r) * m.factor(1).get(0, r) * m.factor(2).get(1, r);
        }
        assert!((v - expect).abs() < 1e-14);
    }

    #[test]
    fn norm_sq_matches_dense_reconstruction() {
        let m = model(3, 4, 2, 2, 3);
        let mut direct = 0.0;
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..2 {
                    let v = m.value_at(&[i as Idx, j as Idx, k as Idx]);
                    direct += v * v;
                }
            }
        }
        assert!((m.norm_sq() - direct).abs() < 1e-9);
    }

    #[test]
    fn zero_tensor_perfectly_fit_by_zero_model() {
        let m = KruskalModel::new(vec![DMat::zeros(3, 2), DMat::zeros(4, 2)]);
        let mut x = CooTensor::new(vec![3, 4]).unwrap();
        x.push(&[0, 0], 0.0).unwrap();
        // ||X|| = 0 -> relative error defined as 0.
        assert_eq!(m.relative_error(&x), 0.0);
    }

    #[test]
    fn exact_model_gives_zero_error() {
        // Build the tensor exactly from the model at every dense cell.
        let m = model(3, 3, 3, 2, 4);
        let mut x = CooTensor::new(vec![3, 3, 3]).unwrap();
        for i in 0..3u32 {
            for j in 0..3u32 {
                for k in 0..3u32 {
                    x.push(&[i, j, k], m.value_at(&[i, j, k])).unwrap();
                }
            }
        }
        assert!(m.relative_error(&x) < 1e-7);
    }

    #[test]
    fn zero_model_gives_error_one() {
        let m = KruskalModel::new(vec![DMat::zeros(2, 2), DMat::zeros(2, 2)]);
        let mut x = CooTensor::new(vec![2, 2]).unwrap();
        x.push(&[0, 0], 2.0).unwrap();
        assert!((m.relative_error(&x) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn fast_error_clamps_negative_residual() {
        // Floating-point cancellation can make the expansion slightly
        // negative; it must clamp, not NaN.
        let e = relative_error_fast(1.0, 0.5 + 5e-17, 0.0);
        assert!(e >= 0.0 && !e.is_nan());
        let e = relative_error_fast(1.0, 1.0, 1.0 - 1e-17);
        assert!(e >= 0.0 && !e.is_nan());
        // Plain case: ||X||^2=4, <X,M>=1, ||M||^2=1 -> sqrt(3)/2.
        let e = relative_error_fast(4.0, 1.0, 1.0);
        assert!((e - (3.0f64).sqrt() / 2.0).abs() < 1e-15);
    }

    #[test]
    fn dims_and_check_dims() {
        let m = model(3, 4, 5, 2, 9);
        assert_eq!(m.dims(), vec![3, 4, 5]);
        assert!(m.check_dims(&[3, 4, 5]).is_ok());
        let err = m.check_dims(&[3, 4]).unwrap_err().to_string();
        assert!(err.contains("3 modes"), "{err}");
        let err = m.check_dims(&[3, 7, 5]).unwrap_err().to_string();
        assert!(err.contains("mode 1") && err.contains("7"), "{err}");
    }

    #[test]
    fn row_norms_match_manual() {
        let m = model(4, 3, 2, 3, 10);
        let norms = m.row_norms(0);
        assert_eq!(norms.len(), 4);
        for (i, &n) in norms.iter().enumerate() {
            let manual: f64 = m.factor(0).row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            assert_eq!(n, manual);
        }
    }

    #[test]
    fn weights_dot_free_row_equals_value_at() {
        let m = model(3, 4, 5, 3, 12);
        let mut w = vec![0.0; 3];
        for free in 0..3 {
            m.weights_into(free, &[2, 1, 4], &mut w);
            for cand in 0..m.factor(free).nrows() {
                let score: f64 = m
                    .factor(free)
                    .row(cand)
                    .iter()
                    .zip(&w)
                    .map(|(a, b)| a * b)
                    .sum();
                let mut coord = [2u32, 1, 4];
                coord[free] = cand as Idx;
                assert!((score - m.value_at(&coord)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn densities_reported_per_factor() {
        let mut a = DMat::zeros(2, 2);
        a.set(0, 0, 1.0);
        let b = DMat::from_vec(2, 2, vec![1.0; 4]).unwrap();
        let m = KruskalModel::new(vec![a, b]);
        assert_eq!(m.factor_densities(0.0), vec![0.25, 1.0]);
    }
}
