//! Checkpointing: persist a run's full optimization state (factors plus
//! ADMM duals) and resume it later with [`crate::Factorizer::factorize_warm`].
//!
//! AO-ADMM runs on billion-nonzero tensors take hours in the paper's
//! setting; a production deployment needs to survive preemption. The
//! state that defines the trajectory is exactly the primal factors and
//! scaled duals, both plain matrices, stored here as concatenated
//! [`crate::model_io`] sections: the model, then the duals — as one
//! combined section when every dual has the model's rank (the ADMM
//! layout, format v1), or as one single-mode section per dual when the
//! widths differ (composite PDS duals live in the constraint operator's
//! image, so their column counts are per-mode; format v2). The reader
//! accepts both.

use crate::error::AoAdmmError;
use crate::kruskal::KruskalModel;
use crate::model_io;
use crate::FactorizeResult;
use splinalg::DMat;
use std::io::{Read, Write};
use std::path::Path;

/// A resumable snapshot of an AO-ADMM run.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Primal factor matrices.
    pub model: KruskalModel,
    /// Scaled inner-solver dual variables, aligned with the factors
    /// (same row counts; column counts are backend-dependent, see
    /// [`crate::Factorizer::dual_cols`]).
    pub duals: Vec<DMat>,
}

impl Checkpoint {
    /// Capture the state of a finished (or interrupted) run.
    pub fn from_result(res: &FactorizeResult) -> Self {
        Checkpoint {
            model: res.model.clone(),
            duals: res.duals.clone(),
        }
    }

    /// Serialize to any writer.
    pub fn write<W: Write>(&self, mut w: W) -> Result<(), AoAdmmError> {
        let uniform = self.duals.iter().all(|d| d.ncols() == self.model.rank());
        let version = if uniform { 1 } else { 2 };
        writeln!(w, "# aoadmm checkpoint v{version}")
            .map_err(|e| AoAdmmError::Config(format!("checkpoint I/O error: {e}")))?;
        model_io::write_model(&self.model, &mut w)?;
        if uniform {
            model_io::write_model(&KruskalModel::new(self.duals.clone()), &mut w)?;
        } else {
            // Ragged widths cannot share one Kruskal section; each dual
            // becomes its own single-mode section.
            for d in &self.duals {
                model_io::write_model(&KruskalModel::new(vec![d.clone()]), &mut w)?;
            }
        }
        Ok(())
    }

    /// Deserialize from any reader.
    pub fn read<R: Read>(r: R) -> Result<Self, AoAdmmError> {
        // Both sections are parsed from the same stream; model_io skips
        // comments and blank lines, so the header is transparent.
        let mut content = String::new();
        let mut r = r;
        r.read_to_string(&mut content)
            .map_err(|e| AoAdmmError::Config(format!("checkpoint I/O error: {e}")))?;
        // Split at the `nmodes` headers: section 0 is the model, the
        // rest are duals (one combined section in v1, one per mode in
        // v2 — distinguished purely by section count, so the version
        // comment stays informational).
        let starts: Vec<usize> = content.match_indices("nmodes ").map(|(i, _)| i).collect();
        if starts.len() < 2 {
            return Err(AoAdmmError::Config(
                "checkpoint is missing the dual section".into(),
            ));
        }
        let bytes = content.as_bytes();
        let model = model_io::read_model(&bytes[..starts[1]])?;
        let duals = if starts.len() == 2 {
            let duals_model = model_io::read_model(&bytes[starts[1]..])?;
            duals_model.into_factors()
        } else {
            let mut duals = Vec::with_capacity(starts.len() - 1);
            for i in 1..starts.len() {
                let end = starts.get(i + 1).copied().unwrap_or(bytes.len());
                let section = model_io::read_model(&bytes[starts[i]..end])?;
                if section.nmodes() != 1 {
                    return Err(AoAdmmError::Config(
                        "checkpoint per-mode dual section must hold exactly one matrix".into(),
                    ));
                }
                duals.extend(section.into_factors());
            }
            duals
        };
        if duals.len() != model.nmodes() {
            return Err(AoAdmmError::Config(
                "checkpoint duals do not match the factors".into(),
            ));
        }
        // Row counts must mirror the factors; column counts are
        // backend-dependent (composite PDS duals are operator-image
        // wide), so they are validated downstream against the resuming
        // configuration's `dual_cols`.
        for (m, (d, f)) in duals.iter().zip(model.factors()).enumerate() {
            if d.nrows() != f.nrows() {
                return Err(AoAdmmError::Config(format!(
                    "checkpoint dual {m} has {} rows, factor has {}",
                    d.nrows(),
                    f.nrows()
                )));
            }
        }
        Ok(Checkpoint { model, duals })
    }

    /// Save to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), AoAdmmError> {
        let path = path.as_ref();
        let f = std::fs::File::create(path).map_err(|e| {
            AoAdmmError::Config(format!("checkpoint I/O error at {}: {e}", path.display()))
        })?;
        self.write(std::io::BufWriter::new(f))
    }

    /// Load from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, AoAdmmError> {
        let path = path.as_ref();
        let f = std::fs::File::open(path).map_err(|e| {
            AoAdmmError::Config(format!("checkpoint I/O error at {}: {e}", path.display()))
        })?;
        Self::read(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Factorizer;
    use admm::constraints;
    use sptensor::gen::{planted, PlantedConfig};

    fn tensor() -> sptensor::CooTensor {
        planted(&PlantedConfig::small()).unwrap()
    }

    fn run(t: &sptensor::CooTensor, outers: usize) -> FactorizeResult {
        Factorizer::new(4)
            .constrain_all(constraints::nonneg())
            .max_outer(outers)
            .tolerance(0.0)
            .seed(3)
            .factorize(t)
            .unwrap()
    }

    #[test]
    fn roundtrip_through_buffer() {
        let t = tensor();
        let res = run(&t, 3);
        let ck = Checkpoint::from_result(&res);
        let mut buf = Vec::new();
        ck.write(&mut buf).unwrap();
        let back = Checkpoint::read(buf.as_slice()).unwrap();
        for m in 0..3 {
            assert_eq!(back.model.factor(m).max_abs_diff(res.model.factor(m)), 0.0);
            assert_eq!(back.duals[m].max_abs_diff(&res.duals[m]), 0.0);
        }
    }

    #[test]
    fn resume_matches_straight_run() {
        // 3 + 3 warm-resumed iterations must land exactly where 6
        // straight iterations land (the state fully determines the
        // trajectory).
        let t = tensor();
        let straight = run(&t, 6);

        let first = run(&t, 3);
        let ck = Checkpoint::from_result(&first);
        let resumed = Factorizer::new(4)
            .constrain_all(constraints::nonneg())
            .max_outer(3)
            .tolerance(0.0)
            .seed(3)
            .factorize_warm(&t, ck.model, Some(ck.duals))
            .unwrap();

        for m in 0..3 {
            let diff = resumed
                .model
                .factor(m)
                .max_abs_diff(straight.model.factor(m));
            assert!(diff < 1e-12, "mode {m} diff {diff}");
        }
        assert!((resumed.trace.final_error - straight.trace.final_error).abs() < 1e-12);
    }

    #[test]
    fn file_roundtrip() {
        let t = tensor();
        let res = run(&t, 2);
        let path = std::env::temp_dir().join("aoadmm_checkpoint_test.ckpt");
        let ck = Checkpoint::from_result(&res);
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.model.rank(), 4);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_error_names_the_path() {
        let missing = std::env::temp_dir().join("aoadmm_missing_checkpoint.ckpt");
        let err = Checkpoint::load(&missing).unwrap_err().to_string();
        assert!(err.contains("aoadmm_missing_checkpoint.ckpt"), "{err}");
    }

    #[test]
    fn rejects_missing_dual_section() {
        let t = tensor();
        let res = run(&t, 2);
        let mut buf = Vec::new();
        crate::model_io::write_model(&res.model, &mut buf).unwrap();
        assert!(Checkpoint::read(buf.as_slice()).is_err());
    }

    #[test]
    fn warm_start_validates_shapes() {
        let t = tensor();
        let res = run(&t, 2);
        // Wrong rank.
        let bad = Factorizer::new(7)
            .constrain_all(constraints::nonneg())
            .factorize_warm(&t, res.model.clone(), None);
        assert!(bad.is_err());
        // Mismatched duals.
        let bad_duals = vec![splinalg::DMat::zeros(1, 4); 3];
        let bad = Factorizer::new(4)
            .constrain_all(constraints::nonneg())
            .factorize_warm(&t, res.model.clone(), Some(bad_duals));
        assert!(bad.is_err());
    }
}
