//! Checkpointing: persist a run's full optimization state (factors plus
//! ADMM duals) and resume it later with [`crate::Factorizer::factorize_warm`].
//!
//! AO-ADMM runs on billion-nonzero tensors take hours in the paper's
//! setting; a production deployment needs to survive preemption. The
//! state that defines the trajectory is exactly the primal factors and
//! scaled duals, both plain matrices, stored here as two concatenated
//! [`crate::model_io`] sections.

use crate::error::AoAdmmError;
use crate::kruskal::KruskalModel;
use crate::model_io;
use crate::FactorizeResult;
use splinalg::DMat;
use std::io::{Read, Write};
use std::path::Path;

/// A resumable snapshot of an AO-ADMM run.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Primal factor matrices.
    pub model: KruskalModel,
    /// Scaled ADMM dual variables, aligned with the factors.
    pub duals: Vec<DMat>,
}

impl Checkpoint {
    /// Capture the state of a finished (or interrupted) run.
    pub fn from_result(res: &FactorizeResult) -> Self {
        Checkpoint {
            model: res.model.clone(),
            duals: res.duals.clone(),
        }
    }

    /// Serialize to any writer.
    pub fn write<W: Write>(&self, mut w: W) -> Result<(), AoAdmmError> {
        writeln!(w, "# aoadmm checkpoint v1")
            .map_err(|e| AoAdmmError::Config(format!("checkpoint I/O error: {e}")))?;
        model_io::write_model(&self.model, &mut w)?;
        model_io::write_model(&KruskalModel::new(self.duals.clone()), &mut w)?;
        Ok(())
    }

    /// Deserialize from any reader.
    pub fn read<R: Read>(r: R) -> Result<Self, AoAdmmError> {
        // Both sections are parsed from the same stream; model_io skips
        // comments and blank lines, so the header is transparent.
        let mut content = String::new();
        let mut r = r;
        r.read_to_string(&mut content)
            .map_err(|e| AoAdmmError::Config(format!("checkpoint I/O error: {e}")))?;
        // Split at the second `nmodes` header.
        let second = content
            .match_indices("nmodes ")
            .nth(1)
            .map(|(i, _)| i)
            .ok_or_else(|| AoAdmmError::Config("checkpoint is missing the dual section".into()))?;
        let bytes = content.as_bytes();
        let model = model_io::read_model(&bytes[..second])?;
        let duals_model = model_io::read_model(&bytes[second..])?;
        let duals = duals_model.into_factors();
        if duals.len() != model.nmodes() {
            return Err(AoAdmmError::Config(
                "checkpoint duals do not match the factors".into(),
            ));
        }
        for (m, (d, f)) in duals.iter().zip(model.factors()).enumerate() {
            if d.nrows() != f.nrows() || d.ncols() != f.ncols() {
                return Err(AoAdmmError::Config(format!(
                    "checkpoint dual {m} is {}x{}, factor is {}x{}",
                    d.nrows(),
                    d.ncols(),
                    f.nrows(),
                    f.ncols()
                )));
            }
        }
        Ok(Checkpoint { model, duals })
    }

    /// Save to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), AoAdmmError> {
        let path = path.as_ref();
        let f = std::fs::File::create(path).map_err(|e| {
            AoAdmmError::Config(format!("checkpoint I/O error at {}: {e}", path.display()))
        })?;
        self.write(std::io::BufWriter::new(f))
    }

    /// Load from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, AoAdmmError> {
        let path = path.as_ref();
        let f = std::fs::File::open(path).map_err(|e| {
            AoAdmmError::Config(format!("checkpoint I/O error at {}: {e}", path.display()))
        })?;
        Self::read(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Factorizer;
    use admm::constraints;
    use sptensor::gen::{planted, PlantedConfig};

    fn tensor() -> sptensor::CooTensor {
        planted(&PlantedConfig::small()).unwrap()
    }

    fn run(t: &sptensor::CooTensor, outers: usize) -> FactorizeResult {
        Factorizer::new(4)
            .constrain_all(constraints::nonneg())
            .max_outer(outers)
            .tolerance(0.0)
            .seed(3)
            .factorize(t)
            .unwrap()
    }

    #[test]
    fn roundtrip_through_buffer() {
        let t = tensor();
        let res = run(&t, 3);
        let ck = Checkpoint::from_result(&res);
        let mut buf = Vec::new();
        ck.write(&mut buf).unwrap();
        let back = Checkpoint::read(buf.as_slice()).unwrap();
        for m in 0..3 {
            assert_eq!(back.model.factor(m).max_abs_diff(res.model.factor(m)), 0.0);
            assert_eq!(back.duals[m].max_abs_diff(&res.duals[m]), 0.0);
        }
    }

    #[test]
    fn resume_matches_straight_run() {
        // 3 + 3 warm-resumed iterations must land exactly where 6
        // straight iterations land (the state fully determines the
        // trajectory).
        let t = tensor();
        let straight = run(&t, 6);

        let first = run(&t, 3);
        let ck = Checkpoint::from_result(&first);
        let resumed = Factorizer::new(4)
            .constrain_all(constraints::nonneg())
            .max_outer(3)
            .tolerance(0.0)
            .seed(3)
            .factorize_warm(&t, ck.model, Some(ck.duals))
            .unwrap();

        for m in 0..3 {
            let diff = resumed
                .model
                .factor(m)
                .max_abs_diff(straight.model.factor(m));
            assert!(diff < 1e-12, "mode {m} diff {diff}");
        }
        assert!((resumed.trace.final_error - straight.trace.final_error).abs() < 1e-12);
    }

    #[test]
    fn file_roundtrip() {
        let t = tensor();
        let res = run(&t, 2);
        let path = std::env::temp_dir().join("aoadmm_checkpoint_test.ckpt");
        let ck = Checkpoint::from_result(&res);
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.model.rank(), 4);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_error_names_the_path() {
        let missing = std::env::temp_dir().join("aoadmm_missing_checkpoint.ckpt");
        let err = Checkpoint::load(&missing).unwrap_err().to_string();
        assert!(err.contains("aoadmm_missing_checkpoint.ckpt"), "{err}");
    }

    #[test]
    fn rejects_missing_dual_section() {
        let t = tensor();
        let res = run(&t, 2);
        let mut buf = Vec::new();
        crate::model_io::write_model(&res.model, &mut buf).unwrap();
        assert!(Checkpoint::read(buf.as_slice()).is_err());
    }

    #[test]
    fn warm_start_validates_shapes() {
        let t = tensor();
        let res = run(&t, 2);
        // Wrong rank.
        let bad = Factorizer::new(7)
            .constrain_all(constraints::nonneg())
            .factorize_warm(&t, res.model.clone(), None);
        assert!(bad.is_err());
        // Mismatched duals.
        let bad_duals = vec![splinalg::DMat::zeros(1, 4); 3];
        let bad = Factorizer::new(4)
            .constrain_all(constraints::nonneg())
            .factorize_warm(&t, res.model.clone(), Some(bad_duals));
        assert!(bad.is_err());
    }
}
