//! Pluggable inner solvers for the AO outer loop.
//!
//! The outer loop of Algorithm 2 is agnostic to *how* a mode's
//! constrained least-squares subproblem
//! `min_A 1/2 tr(A G A^T) - tr(A K^T) + r(A)` is solved; the paper uses
//! ADMM (Algorithm 1), and Ono & Kasai's AO-PDS (arXiv:1711.00603)
//! swaps in a Condat–Vu primal-dual iteration that additionally handles
//! composite penalties `h(L x)` with no closed-form prox. [`InnerSolver`]
//! is the seam between the two: the driver hands each backend the cached
//! Gram matrix, the MTTKRP output, the factor and the mode's dual-state
//! matrix, and records which backend ran in the trace.
//!
//! Both backends keep their scratch (Cholesky factors, solve panels,
//! gradient buffers) inside the solver object, so the zero-allocation
//! steady state of the blocked ADMM carries over unchanged.

use crate::config::Factorizer;
use crate::error::AoAdmmError;
use admm::{admm_update_ws, AdmmConfig, AdmmWorkspace, Prox};
use aoadmm_pds::{pds_update_ws, PdsConfig, PdsConstraint, PdsWorkspace};
use splinalg::DMat;
use std::sync::Arc;

/// Which inner solver the driver runs for every mode update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InnerSolverKind {
    /// Blocked/fused ADMM (Algorithm 1 of the source paper): exact
    /// Cholesky solves plus row-separable proximity operators.
    Admm,
    /// Primal-dual splitting (Condat–Vu): gradient steps plus prox of
    /// the conjugate under a linear operator — handles composite
    /// constraints like total variation that ADMM cannot express.
    Pds,
}

impl InnerSolverKind {
    /// Short lowercase name for traces and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            InnerSolverKind::Admm => "admm",
            InnerSolverKind::Pds => "pds",
        }
    }
}

impl std::fmt::Display for InnerSolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-update statistics every inner solver reports, backend-agnostic.
#[derive(Debug, Clone, Copy)]
pub struct InnerStats {
    /// Inner iterations (maximum over blocks for blocked strategies).
    pub iterations: usize,
    /// Sum over rows of the iterations applied to that row.
    pub row_iterations: u64,
}

/// One inner-solver backend, owning per-mode constraints and all hot-loop
/// scratch. The driver creates one per factorization run and calls
/// [`InnerSolver::update_mode`] once per mode per outer iteration.
pub trait InnerSolver: Send {
    /// Which backend this is (recorded per mode in the trace).
    fn kind(&self) -> InnerSolverKind;

    /// Solve mode `mode`'s subproblem in place: `factor` is the primal
    /// iterate (warm-started from the previous outer iteration), `dual`
    /// the mode's dual-state matrix, shaped
    /// [`Factorizer::dual_cols`]-wide.
    fn update_mode(
        &mut self,
        mode: usize,
        gram: &DMat,
        k: &DMat,
        factor: &mut DMat,
        dual: &mut DMat,
    ) -> Result<InnerStats, AoAdmmError>;
}

/// The blocked/fused ADMM backend wrapping [`admm::admm_update_ws`].
pub struct AdmmInnerSolver {
    constraints: Vec<Arc<dyn Prox>>,
    cfg: AdmmConfig,
    ws: AdmmWorkspace,
}

impl InnerSolver for AdmmInnerSolver {
    fn kind(&self) -> InnerSolverKind {
        InnerSolverKind::Admm
    }

    fn update_mode(
        &mut self,
        mode: usize,
        gram: &DMat,
        k: &DMat,
        factor: &mut DMat,
        dual: &mut DMat,
    ) -> Result<InnerStats, AoAdmmError> {
        let stats = admm_update_ws(
            gram,
            k,
            factor,
            dual,
            &*self.constraints[mode],
            &self.cfg,
            &mut self.ws,
        )?;
        Ok(InnerStats {
            iterations: stats.iterations,
            row_iterations: stats.row_iterations,
        })
    }
}

/// The primal-dual splitting backend wrapping
/// [`aoadmm_pds::pds_update_ws`].
pub struct PdsInnerSolver {
    constraints: Vec<Arc<PdsConstraint>>,
    cfg: PdsConfig,
    ws: PdsWorkspace,
}

impl InnerSolver for PdsInnerSolver {
    fn kind(&self) -> InnerSolverKind {
        InnerSolverKind::Pds
    }

    fn update_mode(
        &mut self,
        mode: usize,
        gram: &DMat,
        k: &DMat,
        factor: &mut DMat,
        dual: &mut DMat,
    ) -> Result<InnerStats, AoAdmmError> {
        let stats = pds_update_ws(
            gram,
            k,
            factor,
            dual,
            &self.constraints[mode],
            &self.cfg,
            &mut self.ws,
        )?;
        Ok(InnerStats {
            iterations: stats.iterations,
            row_iterations: stats.row_iterations,
        })
    }
}

/// Materialize the configured backend with its per-mode constraints
/// resolved (called once per factorization run, before the outer loop).
pub(crate) fn build_inner_solver(cfg: &Factorizer, nmodes: usize) -> Box<dyn InnerSolver> {
    match cfg.inner_solver_kind() {
        InnerSolverKind::Admm => Box::new(AdmmInnerSolver {
            constraints: (0..nmodes).map(|m| cfg.constraint_for(m).clone()).collect(),
            cfg: *cfg.admm_config(),
            ws: AdmmWorkspace::new(),
        }),
        InnerSolverKind::Pds => Box::new(PdsInnerSolver {
            constraints: (0..nmodes).map(|m| cfg.pds_constraint_for(m)).collect(),
            cfg: *cfg.pds_config(),
            ws: PdsWorkspace::new(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_cli_stable() {
        assert_eq!(InnerSolverKind::Admm.name(), "admm");
        assert_eq!(InnerSolverKind::Pds.name(), "pds");
        assert_eq!(format!("{}", InnerSolverKind::Pds), "pds");
    }
}
