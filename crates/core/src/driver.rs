//! The AO-ADMM outer loop (Algorithm 2 of the paper).
//!
//! Per outer iteration, each mode `m` is updated in turn:
//!
//! 1. `G = *_{n != m} (A_n^T A_n)` — Hadamard product of cached Gram
//!    matrices (lines 4/8/12);
//! 2. `K = X_(m) (.. (*) ..)` — MTTKRP over the CSF rooted at `m`
//!    (lines 5/9/13), reading the leaf-level factor through a dense, CSR
//!    or hybrid snapshot per the dynamic-sparsity policy;
//! 3. `A_m, U_m <- ADMM(A_m, U_m, K, G)` — the inner solver (lines
//!    6/10/14), blocked or fused;
//! 4. the mode's Gram matrix is refreshed.
//!
//! After the last mode the relative error is computed for free from the
//! already-available `K` (`<X, M> = <K, A_last>`) and the Gram cache
//! (`||M||^2`), and the run stops when the error improves by less than
//! the outer tolerance (paper: 1e-6) or the iteration cap (paper: 200)
//! is reached.

use crate::alto::AltoTensor;
use crate::config::{CsfPolicy, Factorizer};
use crate::dimtree::IterationPlan;
use crate::error::AoAdmmError;
use crate::inner::build_inner_solver;
use crate::kruskal::{relative_error_fast, KruskalModel};
use crate::mttkrp_onecsf::mttkrp_one_csf_planned;
use crate::mttkrp_plan::{build_mode_plans, MttkrpPlan, PlanStrategy};
use crate::sparsity::{prepare_leaf, SparsityDecision, Structure};
use crate::trace::{FactorizeTrace, IterRecord, ModeRecord};
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use splinalg::{ops, panel, DMat, Workspace};
use sptensor::{CooTensor, Csf};
use std::time::Instant;

/// Result of a factorization: the model plus the full run trace.
#[derive(Debug, Clone)]
pub struct FactorizeResult {
    /// The factor matrices.
    pub model: KruskalModel,
    /// Timing and convergence history.
    pub trace: FactorizeTrace,
    /// Final inner-solver dual variables, one per mode. Feeding these
    /// back via [`factorize_warm`] resumes the optimization exactly
    /// where it stopped (checkpoint/restart; see [`crate::checkpoint`]).
    /// ADMM duals mirror the factor shapes; a composite PDS constraint's
    /// dual is [`Factorizer::dual_cols`] wide instead.
    pub duals: Vec<DMat>,
    /// Gram matrices `A_m^T A_m` of the final factors, one per mode.
    /// A streaming refit passes these back to [`factorize_prepared`] so
    /// the next warm start skips recomputing them.
    pub grams: Vec<DMat>,
}

/// What one [`TensorSource::mttkrp`] call did: the sparsity decision for
/// the leaf factor, the plan strategy that ran, and — on the
/// dimension-tree path — how many memoized slabs were reused vs rebuilt.
#[derive(Debug, Clone, Copy)]
pub struct MttkrpInfo {
    /// Sparsity decision taken for the leaf factor read.
    pub decision: SparsityDecision,
    /// Plan strategy that ran (`None` on the one-CSF conflicting-update
    /// path, which has no root-mode plan strategy).
    pub strategy: Option<PlanStrategy>,
    /// Dimension-tree slabs found valid and reused (0 off the tree path).
    pub slab_hits: u32,
    /// Dimension-tree slabs rebuilt because a dependency factor changed
    /// (0 off the tree path).
    pub slab_misses: u32,
}

impl MttkrpInfo {
    /// Info for the per-mode / one-CSF paths, which have no slab cache.
    fn flat(decision: SparsityDecision, strategy: Option<PlanStrategy>) -> Self {
        MttkrpInfo {
            decision,
            strategy,
            slab_hits: 0,
            slab_misses: 0,
        }
    }
}

/// Something the AO-ADMM outer loop can be driven from: the driver only
/// needs per-mode MTTKRP plus the logical shape and data norm. The
/// static representation is [`PreparedTensor`]; the streaming crate adds
/// a CSF+delta view that serves MTTKRP as
/// `scale * MTTKRP(base) + MTTKRP(delta)` (MTTKRP is linear in the
/// tensor values).
pub trait TensorSource: Sync {
    /// Mode lengths of the logical tensor.
    fn dims(&self) -> &[usize];
    /// Number of stored nonzeros.
    fn nnz(&self) -> usize;
    /// Squared Frobenius norm of the logical tensor (the relative-error
    /// denominator).
    fn norm_sq(&self) -> f64;
    /// `out = X_(mode) * khatri_rao(other factors)`, applying the
    /// dynamic-sparsity policy where the representation allows it.
    fn mttkrp(
        &self,
        mode: usize,
        factors: &[DMat],
        cfg: &Factorizer,
        out: &mut DMat,
    ) -> Result<MttkrpInfo, AoAdmmError>;
    /// Notification that `mode`'s factor matrix changed since the last
    /// MTTKRP. Sources that memoize cross-mode intermediates (the
    /// dimension-tree plan) use this to invalidate them; the default is
    /// a no-op. The driver calls it after every ADMM mode update.
    fn note_factor_changed(&self, _mode: usize) {}
}

/// A tensor compiled into its CSF representation(s) with MTTKRP
/// execution plans, reusable across many factorization calls — the
/// amortization a streaming refit loop needs (build once, refit every
/// batch).
pub struct PreparedTensor {
    set: CsfSet,
    dims: Vec<usize>,
    nnz: usize,
    norm_sq: f64,
}

impl PreparedTensor {
    /// Compile `tensor` under the given CSF policy.
    pub fn build(tensor: &CooTensor, policy: CsfPolicy) -> Result<Self, AoAdmmError> {
        Ok(PreparedTensor {
            set: CsfSet::build(tensor, policy)?,
            dims: tensor.dims().to_vec(),
            nnz: tensor.nnz(),
            norm_sq: tensor.norm_sq(),
        })
    }

    /// Grow the mode lengths to `new_dims` (streaming mode growth). The
    /// fiber structure and the execution plans stay valid because the new
    /// indices own no nonzeros; only the sizing MTTKRP validates against
    /// changes.
    pub fn grow_dims(&mut self, new_dims: &[usize]) -> Result<(), AoAdmmError> {
        match &mut self.set {
            CsfSet::PerMode(csfs) => {
                for (csf, _) in csfs.iter_mut() {
                    csf.grow_dims(new_dims)?;
                }
            }
            CsfSet::One(csf, _) => csf.grow_dims(new_dims)?,
            CsfSet::Tree(plan) => plan.get_mut().grow_dims(new_dims)?,
            CsfSet::Alto(alto) => alto.grow_dims(new_dims)?,
        }
        self.dims = new_dims.to_vec();
        Ok(())
    }
}

impl TensorSource for PreparedTensor {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn norm_sq(&self) -> f64 {
        self.norm_sq
    }

    fn mttkrp(
        &self,
        mode: usize,
        factors: &[DMat],
        cfg: &Factorizer,
        out: &mut DMat,
    ) -> Result<MttkrpInfo, AoAdmmError> {
        self.set.mttkrp(mode, factors, cfg, out)
    }

    fn note_factor_changed(&self, mode: usize) {
        if let CsfSet::Tree(plan) = &self.set {
            plan.lock().note_factor_changed(mode);
        }
    }
}

/// The CSF representations the run operates on (see [`CsfPolicy`]),
/// each paired with the MTTKRP execution plan built once at setup and
/// reused across all outer iterations.
// One CsfSet exists per factorization, so the size skew between the
// variants is irrelevant; boxing would only add a pointer chase.
#[allow(clippy::large_enum_variant)]
enum CsfSet {
    PerMode(Vec<(Csf, MttkrpPlan)>),
    One(Csf, MttkrpPlan),
    // The dimension-tree plan memoizes cross-mode slabs, so serving a
    // mode mutates it; the mutex bridges that to the &self TensorSource
    // interface. The outer loop serves modes sequentially, so the lock
    // is uncontended.
    Tree(Mutex<IterationPlan>),
    // The ALTO linearized substrate manages its own interior-mutable
    // scratch arena; one structure serves every mode.
    Alto(AltoTensor),
}

impl CsfSet {
    fn build(tensor: &CooTensor, policy: CsfPolicy) -> Result<Self, AoAdmmError> {
        let policy = match policy {
            CsfPolicy::Auto => crate::mttkrp_plan::choose_policy(tensor),
            p => p,
        };
        match policy {
            CsfPolicy::One if tensor.nmodes() == 3 => {
                // Root at the shortest mode for maximal prefix sharing.
                let root = (0..3).min_by_key(|&m| tensor.dims()[m]).unwrap();
                let csf = Csf::from_coo_rooted(tensor, root)?;
                let plan = MttkrpPlan::build(&csf);
                Ok(CsfSet::One(csf, plan))
            }
            CsfPolicy::DimTree if tensor.nmodes() >= 3 => {
                Ok(CsfSet::Tree(Mutex::new(IterationPlan::build(tensor)?)))
            }
            CsfPolicy::Alto if AltoTensor::encodable(tensor.dims()) => {
                Ok(CsfSet::Alto(AltoTensor::build(tensor)?))
            }
            _ => Ok(CsfSet::PerMode(build_mode_plans(tensor)?)),
        }
    }

    /// MTTKRP for `mode`, applying the dynamic-sparsity policy where the
    /// representation allows it (per-mode CSFs, or the shared CSF when
    /// `mode` is its root). Returns the sparsity decision and the plan
    /// strategy that ran (`None` on the one-CSF conflicting-update
    /// path).
    fn mttkrp(
        &self,
        mode: usize,
        factors: &[DMat],
        cfg: &Factorizer,
        out: &mut DMat,
    ) -> Result<MttkrpInfo, AoAdmmError> {
        let dense_decision = SparsityDecision {
            density: 1.0,
            structure: Structure::Dense,
        };
        match self {
            CsfSet::PerMode(csfs) => {
                let (csf, plan) = &csfs[mode];
                let leaf_mode = *csf.mode_order().last().unwrap();
                let leaf_prox = cfg.constraint_for(leaf_mode);
                let (leaf, decision) = prepare_leaf(
                    &factors[leaf_mode],
                    leaf_prox.induces_sparsity(),
                    cfg.sparsity_config(),
                );
                leaf.mttkrp_planned(csf, plan, factors, out)?;
                Ok(MttkrpInfo::flat(decision, Some(plan.strategy())))
            }
            CsfSet::One(csf, plan) => {
                if csf.mode_order()[0] == mode {
                    let leaf_mode = *csf.mode_order().last().unwrap();
                    let leaf_prox = cfg.constraint_for(leaf_mode);
                    let (leaf, decision) = prepare_leaf(
                        &factors[leaf_mode],
                        leaf_prox.induces_sparsity(),
                        cfg.sparsity_config(),
                    );
                    leaf.mttkrp_planned(csf, plan, factors, out)?;
                    Ok(MttkrpInfo::flat(decision, Some(plan.strategy())))
                } else {
                    mttkrp_one_csf_planned(csf, plan, factors, mode, out)?;
                    Ok(MttkrpInfo::flat(dense_decision, None))
                }
            }
            CsfSet::Tree(plan) => {
                let tree = plan.lock().mttkrp(mode, factors, cfg, out)?;
                Ok(MttkrpInfo {
                    decision: tree.decision,
                    strategy: Some(PlanStrategy::DimTree),
                    slab_hits: tree.hits,
                    slab_misses: tree.misses,
                })
            }
            CsfSet::Alto(alto) => alto.mttkrp(mode, factors, cfg, out),
        }
    }
}

/// Seeded random factor initialization with norm matching, shared by the
/// cold entry point and streaming cold starts.
///
/// The random init is scaled so the initial model norm matches the data
/// norm (`xnorm_sq`). On very sparse tensors an unscaled random model is
/// orders of magnitude too large; its Gram matrices then make
/// rho = trace(G)/F enormous and the first ADMM updates barely move,
/// stalling the outer loop inside its early-stopping window (standard CP
/// practice, cf. Tensor Toolbox / SPLATT initialization).
pub fn init_factors(dims: &[usize], rank: usize, seed: u64, xnorm_sq: f64) -> Vec<DMat> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut factors: Vec<DMat> = dims
        .iter()
        .map(|&d| DMat::random(d, rank, 0.0, 1.0, &mut rng))
        .collect();
    let grams: Vec<DMat> = factors.iter().map(|f| f.gram()).collect();
    let mnorm_sq = ops::model_norm_sq(&grams).expect("grams are square and aligned");
    if mnorm_sq > 0.0 && xnorm_sq > 0.0 {
        let scale = (xnorm_sq / mnorm_sq).powf(1.0 / (2.0 * dims.len() as f64));
        for f in &mut factors {
            f.scale(scale);
        }
    }
    factors
}

/// Run AO-ADMM on `tensor` with the given configuration.
///
/// Prefer the builder entry point [`Factorizer::factorize`].
pub fn factorize(tensor: &CooTensor, cfg: &Factorizer) -> Result<FactorizeResult, AoAdmmError> {
    cfg.validate(tensor)?;
    let rank = cfg.rank();
    let t0 = Instant::now();
    let prepared = PreparedTensor::build(tensor, cfg.csf_policy_value())?;
    let factors = init_factors(tensor.dims(), rank, cfg.seed_value(), prepared.norm_sq());
    let duals: Vec<DMat> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| DMat::zeros(d, cfg.dual_cols(m)))
        .collect();
    run(&prepared, cfg, factors, duals, None, t0)
}

/// Run AO-ADMM cold-started from any [`TensorSource`] — the entry point
/// for tensors that never exist as one local `CooTensor` (the sharded
/// view in `aoadmm-distsim` serves MTTKRP from per-shard CSF sets).
/// Seeded factor initialization is drawn from the source's logical shape
/// and norm exactly as [`factorize`] draws it from a concrete tensor, so
/// a source that reproduces the tensor's MTTKRP reproduces its run.
pub fn factorize_source(
    source: &dyn TensorSource,
    cfg: &Factorizer,
) -> Result<FactorizeResult, AoAdmmError> {
    cfg.validate_shape(source.dims(), source.nnz())?;
    let rank = cfg.rank();
    let t0 = Instant::now();
    let factors = init_factors(source.dims(), rank, cfg.seed_value(), source.norm_sq());
    let duals: Vec<DMat> = source
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| DMat::zeros(d, cfg.dual_cols(m)))
        .collect();
    run(source, cfg, factors, duals, None, t0)
}

/// Run AO-ADMM starting from existing factors (and optionally duals):
/// warm restarts, checkpoint resumption, or refining an ALS solution
/// under constraints.
pub fn factorize_warm(
    tensor: &CooTensor,
    cfg: &Factorizer,
    model: KruskalModel,
    duals: Option<Vec<DMat>>,
) -> Result<FactorizeResult, AoAdmmError> {
    cfg.validate(tensor)?;
    let (factors, duals) = prepare_warm_state(cfg, tensor.dims(), model, duals)?;
    let t0 = Instant::now();
    let prepared = PreparedTensor::build(tensor, cfg.csf_policy_value())?;
    run(&prepared, cfg, factors, duals, None, t0)
}

/// Run AO-ADMM on an already-compiled tensor representation, warm-started
/// from `model` (plus optional duals and cached Gram matrices) — the
/// streaming refit entry point. The representation is borrowed, so the
/// same [`PreparedTensor`] (or CSF+delta view) serves many bounded refits
/// without recompiling; `duals` and `grams` from the previous refit's
/// [`FactorizeResult`] make the warm start complete.
pub fn factorize_prepared(
    source: &dyn TensorSource,
    cfg: &Factorizer,
    model: KruskalModel,
    duals: Option<Vec<DMat>>,
    grams: Option<Vec<DMat>>,
) -> Result<FactorizeResult, AoAdmmError> {
    cfg.validate_shape(source.dims(), source.nnz())?;
    let (factors, duals) = prepare_warm_state(cfg, source.dims(), model, duals)?;
    if let Some(g) = &grams {
        let rank = cfg.rank();
        if g.len() != factors.len() || g.iter().any(|m| m.nrows() != rank || m.ncols() != rank) {
            return Err(AoAdmmError::Config(
                "warm-start gram cache does not match the configured rank".into(),
            ));
        }
    }
    run(source, cfg, factors, duals, grams, Instant::now())
}

/// Validate a warm-start model/duals against the configuration and the
/// tensor shape, returning the initial state for [`run`].
fn prepare_warm_state(
    cfg: &Factorizer,
    dims: &[usize],
    model: KruskalModel,
    duals: Option<Vec<DMat>>,
) -> Result<(Vec<DMat>, Vec<DMat>), AoAdmmError> {
    let rank = cfg.rank();
    if model.rank() != rank {
        return Err(AoAdmmError::Config(format!(
            "warm-start model has rank {}, configuration says {rank}",
            model.rank()
        )));
    }
    if model.nmodes() != dims.len() {
        return Err(AoAdmmError::Config(format!(
            "warm-start model has {} modes, tensor has {}",
            model.nmodes(),
            dims.len()
        )));
    }
    for (m, fac) in model.factors().iter().enumerate() {
        if fac.nrows() != dims[m] {
            return Err(AoAdmmError::Config(format!(
                "warm-start factor {m} has {} rows; mode is {}",
                fac.nrows(),
                dims[m]
            )));
        }
    }
    let factors = model.into_factors();
    let duals = match duals {
        Some(d) => {
            // Row counts always mirror the factors; the column count is
            // backend-dependent (composite PDS duals live in the
            // operator's image).
            if d.len() != factors.len()
                || d.iter()
                    .zip(&factors)
                    .enumerate()
                    .any(|(m, (a, b))| a.nrows() != b.nrows() || a.ncols() != cfg.dual_cols(m))
            {
                return Err(AoAdmmError::Config(
                    "warm-start duals do not match the configured inner solver's dual shapes"
                        .into(),
                ));
            }
            d
        }
        None => factors
            .iter()
            .enumerate()
            .map(|(m, f)| DMat::zeros(f.nrows(), cfg.dual_cols(m)))
            .collect(),
    };
    Ok((factors, duals))
}

/// Shared AO-ADMM loop over explicit initial state. `t0` is the caller's
/// start-of-work instant, so representation builds done by the caller
/// count toward the trace's setup time; `grams`, when given, must be the
/// Gram matrices of `factors` (a warm-started refit hands back the cache
/// from the previous result).
fn run(
    source: &dyn TensorSource,
    cfg: &Factorizer,
    mut factors: Vec<DMat>,
    mut duals: Vec<DMat>,
    grams: Option<Vec<DMat>>,
    t0: Instant,
) -> Result<FactorizeResult, AoAdmmError> {
    let dims = source.dims().to_vec();
    let nmodes = dims.len();
    let rank = cfg.rank();

    // --- Setup: Gram cache, MTTKRP buffers. ---
    let mut grams: Vec<DMat> = match grams {
        Some(g) => g,
        None => factors.iter().map(|f| f.gram()).collect(),
    };
    let mut kbufs: Vec<DMat> = dims.iter().map(|&d| DMat::zeros(d, rank)).collect();
    let xnorm_sq = source.norm_sq();
    // Scratch owned here and lent to every kernel below: the combined
    // Gram matrix, the inner solver's workspace (Cholesky factors, solve
    // panels, block outcomes / PDS gradient buffers) and the dense-kernel
    // workspace (gram partials). Everything reaches its high-water mark
    // during the first outer iteration; steady-state iterations perform
    // no heap allocation in the gram / solve / inner row-sweep path.
    let mut gram_buf = DMat::zeros(rank, rank);
    let mut solver = build_inner_solver(cfg, nmodes);
    let inner_kind = solver.kind();
    let mut lin_ws = Workspace::new();
    let setup = t0.elapsed();

    let mut iterations: Vec<IterRecord> = Vec::new();
    let mut prev_err = f64::INFINITY;
    let mut converged = false;

    for outer in 1..=cfg.max_outer_iterations() {
        let mut modes: Vec<ModeRecord> = Vec::with_capacity(nmodes);
        let mut last_inner = 0.0;

        for m in 0..nmodes {
            // Line 4/8/12: combined Gram matrix of the other modes,
            // written into the reused buffer.
            ops::gram_hadamard_into(&grams, m, &mut gram_buf)?;

            // Line 5/9/13: MTTKRP (timed together with any sparse
            // snapshot build, which is part of its cost).
            let tm = Instant::now();
            let info = source.mttkrp(m, &factors, cfg, &mut kbufs[m])?;
            let mttkrp_time = tm.elapsed();

            // Line 6/10/14: inner solver (ADMM or PDS, per the config).
            let ta = Instant::now();
            let stats =
                solver.update_mode(m, &gram_buf, &kbufs[m], &mut factors[m], &mut duals[m])?;
            let admm_time = ta.elapsed();

            // The inner step rewrote factors[m]; memoizing sources must
            // drop any cached intermediate that read the old values.
            source.note_factor_changed(m);

            // Refresh this mode's Gram matrix for subsequent modes
            // (panel kernel, bit-identical to `factors[m].gram()`).
            panel::gram_into(&factors[m], &mut lin_ws, &mut grams[m])?;

            if m == nmodes - 1 {
                // Fit trick: <X, M> = <K_last, A_last>; K was computed
                // from the *other* factors, which have not changed since.
                last_inner = ops::inner_product(&kbufs[m], &factors[m])?;
            }

            modes.push(ModeRecord {
                mode: m,
                mttkrp_strategy: info.strategy,
                mttkrp: mttkrp_time,
                admm: admm_time,
                admm_iterations: stats.iterations,
                admm_row_iterations: stats.row_iterations,
                inner: Some(inner_kind),
                sparsity: info.decision,
                slab_hits: info.slab_hits,
                slab_misses: info.slab_misses,
            });
        }

        let model_norm_sq = ops::model_norm_sq(&grams)?;
        let rel_error = relative_error_fast(xnorm_sq, last_inner, model_norm_sq);
        iterations.push(IterRecord {
            iter: outer,
            rel_error,
            elapsed: t0.elapsed(),
            modes,
        });
        if let Some(cb) = cfg.progress_callback() {
            cb(iterations.last().expect("just pushed"));
        }

        // Paper's stopping rule: relative error improves less than tol.
        if outer > 1 && prev_err - rel_error < cfg.outer_tolerance() {
            converged = true;
            break;
        }
        prev_err = rel_error;
    }

    let final_error = iterations.last().map(|i| i.rel_error).unwrap_or(f64::NAN);
    let trace = FactorizeTrace {
        iterations,
        total: t0.elapsed(),
        setup,
        final_error,
        converged,
    };
    Ok(FactorizeResult {
        model: KruskalModel::new(factors),
        trace,
        duals,
        grams,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use admm::constraints;
    use sptensor::gen::{planted, PlantedConfig};

    fn small_tensor() -> CooTensor {
        planted(&PlantedConfig::small()).unwrap()
    }

    #[test]
    fn error_decreases_monotonically_overall() {
        let t = small_tensor();
        let res = Factorizer::new(6)
            .constrain_all(constraints::nonneg())
            .max_outer(15)
            .seed(1)
            .factorize(&t)
            .unwrap();
        let errs: Vec<f64> = res.trace.iterations.iter().map(|i| i.rel_error).collect();
        assert!(errs.len() >= 2);
        // First-to-last improvement must be substantial and no iteration
        // may blow the error up.
        assert!(errs.last().unwrap() < &errs[0], "{errs:?}");
        for w in errs.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "error increased: {w:?}");
        }
    }

    #[test]
    fn nonneg_factors_are_feasible() {
        let t = small_tensor();
        let res = Factorizer::new(5)
            .constrain_all(constraints::nonneg())
            .max_outer(10)
            .seed(2)
            .factorize(&t)
            .unwrap();
        for m in 0..3 {
            let fac = res.model.factor(m);
            assert!(
                fac.as_slice().iter().all(|&x| x >= 0.0),
                "mode {m} has negative entries"
            );
        }
    }

    #[test]
    fn recovers_planted_low_rank_structure() {
        // Rank-5 planted data, rank-8 model. Because unsampled cells of a
        // sparse tensor count as zeros, the reachable relative error sits
        // well below 1 but far above the noise floor — the same regime as
        // the paper's datasets (final errors 0.54-0.89 in Figure 6).
        let t = small_tensor();
        let res = Factorizer::new(8)
            .constrain_all(constraints::nonneg())
            .max_outer(60)
            .seed(3)
            .factorize(&t)
            .unwrap();
        assert!(
            res.trace.final_error < 0.75,
            "final error {}",
            res.trace.final_error
        );
    }

    #[test]
    fn fast_error_matches_direct_evaluation() {
        let t = small_tensor();
        let res = Factorizer::new(4)
            .constrain_all(constraints::nonneg())
            .max_outer(5)
            .seed(4)
            .factorize(&t)
            .unwrap();
        let direct = res.model.relative_error(&t);
        assert!(
            (direct - res.trace.final_error).abs() < 1e-8,
            "direct {direct} vs fast {}",
            res.trace.final_error
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let t = small_tensor();
        let run = || {
            Factorizer::new(4)
                .constrain_all(constraints::nonneg())
                .max_outer(5)
                .seed(9)
                .factorize(&t)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.trace.final_error, b.trace.final_error);
        for m in 0..3 {
            assert_eq!(a.model.factor(m).max_abs_diff(b.model.factor(m)), 0.0);
        }
    }

    #[test]
    fn trace_records_all_modes() {
        let t = small_tensor();
        let res = Factorizer::new(3).max_outer(3).factorize(&t).unwrap();
        for it in &res.trace.iterations {
            assert_eq!(it.modes.len(), 3);
            for (m, rec) in it.modes.iter().enumerate() {
                assert_eq!(rec.mode, m);
                assert!(rec.admm_iterations >= 1);
            }
        }
        assert!(res.trace.total >= res.trace.setup);
    }

    #[test]
    fn l1_regularization_produces_sparser_factors() {
        let mut cfg = PlantedConfig::small();
        cfg.factor_density = 0.3;
        cfg.nnz = 8_000;
        let t = planted(&cfg).unwrap();

        let dense_run = Factorizer::new(8)
            .constrain_all(constraints::nonneg())
            .max_outer(25)
            .seed(5)
            .factorize(&t)
            .unwrap();
        let sparse_run = Factorizer::new(8)
            .constrain_all(constraints::nonneg_lasso(0.5))
            .max_outer(25)
            .seed(5)
            .factorize(&t)
            .unwrap();

        let dd: f64 = dense_run.model.factor_densities(0.0).iter().sum();
        let sd: f64 = sparse_run.model.factor_densities(0.0).iter().sum();
        assert!(sd < dd, "l1 densities {sd} !< nonneg densities {dd}");
    }

    #[test]
    fn mixed_per_mode_constraints() {
        let t = small_tensor();
        let res = Factorizer::new(4)
            .constrain_all(constraints::nonneg())
            .constrain_mode(1, constraints::simplex())
            .max_outer(10)
            .seed(6)
            .factorize(&t)
            .unwrap();
        let fac = res.model.factor(1);
        for i in 0..fac.nrows() {
            let sum: f64 = fac.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {i} sums to {sum}");
            assert!(fac.row(i).iter().all(|&x| x >= -1e-12));
        }
    }

    #[test]
    fn respects_max_outer_cap() {
        let t = small_tensor();
        let res = Factorizer::new(4).max_outer(2).factorize(&t).unwrap();
        assert_eq!(res.trace.outer_iterations(), 2);
    }

    #[test]
    fn one_csf_policy_matches_per_mode() {
        // The same arithmetic through different tensor representations:
        // identical trajectories up to fp reduction order.
        let t = small_tensor();
        let run = |policy: CsfPolicy| {
            Factorizer::new(5)
                .constrain_all(constraints::nonneg())
                .csf_policy(policy)
                .max_outer(6)
                .seed(8)
                .factorize(&t)
                .unwrap()
        };
        let per_mode = run(CsfPolicy::PerMode);
        let one = run(CsfPolicy::One);
        assert!(
            (per_mode.trace.final_error - one.trace.final_error).abs() < 1e-8,
            "{} vs {}",
            per_mode.trace.final_error,
            one.trace.final_error
        );
        for m in 0..3 {
            assert!(per_mode.model.factor(m).max_abs_diff(one.model.factor(m)) < 1e-6);
        }
    }

    #[test]
    fn one_csf_policy_falls_back_for_higher_order() {
        let mut cfg = PlantedConfig::small();
        cfg.dims = vec![10, 8, 9, 7];
        cfg.zipf_exponents = vec![0.5; 4];
        cfg.nnz = 1_000;
        let t = planted(&cfg).unwrap();
        let res = Factorizer::new(3)
            .csf_policy(CsfPolicy::One)
            .max_outer(3)
            .factorize(&t)
            .unwrap();
        assert_eq!(res.model.nmodes(), 4);
    }

    #[test]
    fn dimtree_policy_matches_per_mode() {
        let t = small_tensor();
        let run = |policy: CsfPolicy| {
            Factorizer::new(5)
                .constrain_all(constraints::nonneg())
                .csf_policy(policy)
                .max_outer(6)
                .seed(8)
                .factorize(&t)
                .unwrap()
        };
        let per_mode = run(CsfPolicy::PerMode);
        let tree = run(CsfPolicy::DimTree);
        assert!(
            (per_mode.trace.final_error - tree.trace.final_error).abs() < 1e-8,
            "{} vs {}",
            per_mode.trace.final_error,
            tree.trace.final_error
        );
        for m in 0..3 {
            assert!(per_mode.model.factor(m).max_abs_diff(tree.model.factor(m)) < 1e-6);
        }
        // Steady-state sweeps reuse memoized slabs; the trace must see
        // both the strategy tag and nonzero hit counters.
        let last = tree.trace.iterations.last().unwrap();
        assert!(last
            .modes
            .iter()
            .all(|r| r.mttkrp_strategy == Some(PlanStrategy::DimTree)));
        assert!(last.modes.iter().any(|r| r.slab_hits > 0));
        let flat_last = per_mode.trace.iterations.last().unwrap();
        assert!(flat_last
            .modes
            .iter()
            .all(|r| r.slab_hits == 0 && r.slab_misses == 0));
    }

    #[test]
    fn alto_policy_matches_per_mode() {
        let t = small_tensor();
        let run = |policy: CsfPolicy| {
            Factorizer::new(5)
                .constrain_all(constraints::nonneg())
                .csf_policy(policy)
                .max_outer(6)
                .seed(8)
                .factorize(&t)
                .unwrap()
        };
        let per_mode = run(CsfPolicy::PerMode);
        let alto = run(CsfPolicy::Alto);
        assert!(
            (per_mode.trace.final_error - alto.trace.final_error).abs() < 1e-8,
            "{} vs {}",
            per_mode.trace.final_error,
            alto.trace.final_error
        );
        for m in 0..3 {
            assert!(per_mode.model.factor(m).max_abs_diff(alto.model.factor(m)) < 1e-6);
        }
        // The trace reports the substrate per mode, so --csf decisions
        // are observable downstream.
        let last = alto.trace.iterations.last().unwrap();
        assert!(last
            .modes
            .iter()
            .all(|r| r.mttkrp_strategy == Some(PlanStrategy::Alto)));
    }

    #[test]
    fn auto_policy_resolves_and_factorizes() {
        // A skewed tensor auto-selects ALTO; the run must agree with the
        // explicit per-mode baseline.
        let mut cfg = PlantedConfig::small();
        cfg.zipf_exponents = vec![1.4, 0.0, 0.0];
        let t = planted(&cfg).unwrap();
        let run = |policy: CsfPolicy| {
            Factorizer::new(4)
                .csf_policy(policy)
                .max_outer(4)
                .seed(5)
                .factorize(&t)
                .unwrap()
        };
        let per_mode = run(CsfPolicy::PerMode);
        let auto = run(CsfPolicy::Auto);
        assert!(
            (per_mode.trace.final_error - auto.trace.final_error).abs() < 1e-8,
            "{} vs {}",
            per_mode.trace.final_error,
            auto.trace.final_error
        );
    }

    #[test]
    fn alto_policy_works_on_four_modes() {
        let mut cfg = PlantedConfig::small();
        cfg.dims = vec![10, 8, 9, 7];
        cfg.zipf_exponents = vec![0.5; 4];
        cfg.nnz = 1_000;
        let t = planted(&cfg).unwrap();
        let run = |policy: CsfPolicy| {
            Factorizer::new(4)
                .csf_policy(policy)
                .max_outer(4)
                .seed(2)
                .factorize(&t)
                .unwrap()
        };
        let per_mode = run(CsfPolicy::PerMode);
        let alto = run(CsfPolicy::Alto);
        assert!(
            (per_mode.trace.final_error - alto.trace.final_error).abs() < 1e-8,
            "{} vs {}",
            per_mode.trace.final_error,
            alto.trace.final_error
        );
    }

    #[test]
    fn dimtree_policy_works_on_four_modes() {
        let mut cfg = PlantedConfig::small();
        cfg.dims = vec![10, 8, 9, 7];
        cfg.zipf_exponents = vec![0.5; 4];
        cfg.nnz = 1_000;
        let t = planted(&cfg).unwrap();
        let run = |policy: CsfPolicy| {
            Factorizer::new(4)
                .csf_policy(policy)
                .max_outer(4)
                .seed(2)
                .factorize(&t)
                .unwrap()
        };
        let per_mode = run(CsfPolicy::PerMode);
        let tree = run(CsfPolicy::DimTree);
        assert!(
            (per_mode.trace.final_error - tree.trace.final_error).abs() < 1e-8,
            "{} vs {}",
            per_mode.trace.final_error,
            tree.trace.final_error
        );
    }

    #[test]
    fn progress_callback_fires_each_iteration() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let t = small_tensor();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let res = Factorizer::new(3)
            .max_outer(4)
            .tolerance(0.0)
            .on_iteration(move |rec| {
                assert!(rec.rel_error.is_finite());
                c2.fetch_add(1, Ordering::SeqCst);
            })
            .factorize(&t)
            .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), res.trace.outer_iterations());
    }

    #[test]
    fn prepared_path_matches_factorize_exactly() {
        // factorize() is now a thin wrapper over PreparedTensor +
        // init_factors + run; driving the pieces by hand must land on the
        // identical trajectory.
        let t = small_tensor();
        let cfg = Factorizer::new(5)
            .constrain_all(constraints::nonneg())
            .max_outer(5)
            .seed(11);
        let direct = cfg.factorize(&t).unwrap();

        let prepared = PreparedTensor::build(&t, cfg.csf_policy_value()).unwrap();
        let factors = init_factors(t.dims(), 5, 11, prepared.norm_sq());
        let manual =
            factorize_prepared(&prepared, &cfg, KruskalModel::new(factors), None, None).unwrap();
        assert_eq!(direct.trace.final_error, manual.trace.final_error);
        for m in 0..3 {
            assert_eq!(
                direct.model.factor(m).max_abs_diff(manual.model.factor(m)),
                0.0
            );
        }
    }

    #[test]
    fn source_entry_point_matches_factorize_exactly() {
        // factorize_source over a PreparedTensor is the same cold start
        // as factorize: same seeded init, same loop, same trajectory.
        let t = small_tensor();
        let cfg = Factorizer::new(5)
            .constrain_all(constraints::nonneg())
            .max_outer(5)
            .seed(11);
        let direct = cfg.factorize(&t).unwrap();
        let prepared = PreparedTensor::build(&t, cfg.csf_policy_value()).unwrap();
        let via_source = factorize_source(&prepared, &cfg).unwrap();
        assert_eq!(direct.trace.final_error, via_source.trace.final_error);
        for m in 0..3 {
            assert_eq!(
                direct
                    .model
                    .factor(m)
                    .max_abs_diff(via_source.model.factor(m)),
                0.0
            );
        }
    }

    #[test]
    fn gram_cache_warm_start_is_exact() {
        // 3 iterations + 3 resumed with (factors, duals, grams) must land
        // exactly where 6 straight iterations land: the gram cache is a
        // pure function of the factors, so handing it back cannot change
        // the trajectory.
        let t = small_tensor();
        let cfg = Factorizer::new(4)
            .constrain_all(constraints::nonneg())
            .max_outer(6)
            .tolerance(0.0)
            .seed(3);
        let straight = cfg.factorize(&t).unwrap();

        let first = cfg.clone().max_outer(3).factorize(&t).unwrap();
        let prepared = PreparedTensor::build(&t, cfg.csf_policy_value()).unwrap();
        let resumed = factorize_prepared(
            &prepared,
            &cfg.clone().max_outer(3),
            first.model,
            Some(first.duals),
            Some(first.grams),
        )
        .unwrap();
        for m in 0..3 {
            let diff = resumed
                .model
                .factor(m)
                .max_abs_diff(straight.model.factor(m));
            assert!(diff < 1e-12, "mode {m} diff {diff}");
        }
    }

    #[test]
    fn result_grams_match_final_factors() {
        let t = small_tensor();
        let res = Factorizer::new(4).max_outer(3).factorize(&t).unwrap();
        for m in 0..3 {
            assert_eq!(res.grams[m].max_abs_diff(&res.model.factor(m).gram()), 0.0);
        }
    }

    #[test]
    fn prepared_grow_dims_accepts_larger_factors() {
        let t = small_tensor();
        let cfg = Factorizer::new(3).max_outer(2).seed(5);
        let mut prepared = PreparedTensor::build(&t, cfg.csf_policy_value()).unwrap();
        let mut new_dims = t.dims().to_vec();
        new_dims[0] += 4;
        new_dims[2] += 1;
        prepared.grow_dims(&new_dims).unwrap();
        assert_eq!(prepared.dims(), &new_dims[..]);
        let mut factors = init_factors(t.dims(), 3, 5, prepared.norm_sq());
        factors[0].append_zero_rows(4);
        factors[2].append_zero_rows(1);
        let res =
            factorize_prepared(&prepared, &cfg, KruskalModel::new(factors), None, None).unwrap();
        assert_eq!(res.model.factor(0).nrows(), new_dims[0]);
        assert!(res.trace.final_error.is_finite());
        // Shrinking is rejected.
        assert!(prepared.grow_dims(t.dims()).is_err());
    }

    #[test]
    fn four_mode_factorization_works() {
        let mut cfg = PlantedConfig::small();
        cfg.dims = vec![15, 12, 10, 8];
        cfg.zipf_exponents = vec![0.5; 4];
        cfg.nnz = 3_000;
        let t = planted(&cfg).unwrap();
        let res = Factorizer::new(4)
            .constrain_all(constraints::nonneg())
            .max_outer(10)
            .factorize(&t)
            .unwrap();
        assert_eq!(res.model.nmodes(), 4);
        assert!(res.trace.final_error < 1.0);
    }
}
