#!/bin/bash
# Regenerate every table and figure; plain-text logs land in bench_results/.
set -u
cd /root/repo
mkdir -p bench_results
B=./target/release
run() { name=$1; shift; echo "=== $name: $* ==="; "$@" > bench_results/$name.txt 2>&1; echo "--- $name done (rc=$?)"; }
run table1 $B/table1
run fig3 $B/fig3 --max-outer 15
run fig4 $B/fig4 --max-outer 2
run fig5 $B/fig5 --max-outer 2
run fig6 $B/fig6 --max-outer 30
run ablation_block $B/ablation_block --max-outer 5
run ablation_sparsity $B/ablation_sparsity --max-outer 12
run ablation_admm $B/ablation_admm --max-outer 10
run baselines $B/baselines --max-outer 10
run recovery $B/recovery
run distsim $B/distsim
run table2 $B/table2 --scale 0.5 --ranks 50,100,200 --max-outer 8
run panel_speedup $B/panel_speedup
echo ALL-DONE
