//! Recommender-system scenario (the paper's Reddit / Amazon motivation):
//! a user x item x word tensor of review interactions, factorized with
//! non-negativity plus l1 sparsity so the latent topics are
//! interpretable, then used to rank items for a user.
//!
//! Run with: `cargo run --release -p aoadmm --example recommender`

use admm::constraints;
use aoadmm::{Factorizer, SparsityConfig};
use sptensor::gen::Analog;

fn main() {
    // A scaled-down Amazon-style tensor: user x item x word with
    // power-law popularity and plantable sparse structure.
    let tensor = Analog::Amazon.generate(0.02, 11).expect("generator");
    let (nusers, nitems, nwords) = (tensor.dims()[0], tensor.dims()[1], tensor.dims()[2]);
    println!(
        "review tensor: {nusers} users x {nitems} items x {nwords} words, {} nnz",
        tensor.nnz()
    );

    // Non-negative l1: non-negativity makes components additive (parts of
    // taste), l1 keeps each component's word list short.
    let result = Factorizer::new(12)
        .constrain_all(constraints::nonneg_lasso(0.05))
        .sparsity(SparsityConfig::default())
        .max_outer(25)
        .seed(3)
        .factorize(&tensor)
        .expect("factorization");

    println!(
        "factorized in {:.2}s, relative error {:.4}",
        result.trace.total.as_secs_f64(),
        result.trace.final_error
    );
    let dens = result.model.factor_densities(0.0);
    println!(
        "factor densities: users {:.1}%, items {:.1}%, words {:.1}%",
        dens[0] * 100.0,
        dens[1] * 100.0,
        dens[2] * 100.0
    );

    // Score items for one user by collapsing the word mode: the
    // user-item affinity is sum_f U(u,f) * I(i,f) * (sum_w W(w,f)),
    // i.e. weight each component by its total word mass.
    let user = 0usize;
    let ufac = result.model.factor(0);
    let ifac = result.model.factor(1);
    let wfac = result.model.factor(2);
    let rank = result.model.rank();

    let word_mass: Vec<f64> = (0..rank)
        .map(|f| (0..nwords).map(|w| wfac.get(w, f)).sum())
        .collect();

    let mut scores: Vec<(usize, f64)> = (0..nitems)
        .map(|i| {
            let s: f64 = (0..rank)
                .map(|f| ufac.get(user, f) * ifac.get(i, f) * word_mass[f])
                .sum();
            (i, s)
        })
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("\ntop-5 recommendations for user {user}:");
    for (rank_pos, (item, score)) in scores.iter().take(5).enumerate() {
        println!("  #{:<2} item {item:<6} score {score:.4}", rank_pos + 1);
    }

    // The user's dominant latent components.
    let mut comps: Vec<(usize, f64)> = (0..rank).map(|f| (f, ufac.get(user, f))).collect();
    comps.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nuser {user} loads heaviest on components:");
    for (f, w) in comps.iter().take(3) {
        println!("  component {f}: weight {w:.3}");
    }
}
