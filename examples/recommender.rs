//! Recommender-system scenario (the paper's Reddit / Amazon motivation),
//! end to end through the serving stack: a user x item x word tensor of
//! review interactions is factorized with non-negativity plus l1
//! sparsity, published into a [`aoadmm_serve::ModelRegistry`], and
//! queried through a [`aoadmm_serve::ServeEngine`] — while a
//! [`aoadmm_stream::StreamingFactorizer`] ingests fresh reviews and
//! hot-swaps every warm refit into service under the live queries.
//!
//! Run with: `cargo run --release -p aoadmm-serve --example recommender`

use admm::constraints;
use aoadmm::{Factorizer, SparsityConfig};
use aoadmm_serve::{ModelRegistry, ServeEngine, TopKQuery};
use aoadmm_stream::{MergePolicy, ModelSink, StreamOp, StreamingConfig, StreamingFactorizer};
use sptensor::gen::Analog;
use sptensor::Idx;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    // A scaled-down Amazon-style tensor: user x item x word with
    // power-law popularity and plantable sparse structure.
    let tensor = Analog::Amazon.generate(0.02, 11).expect("generator");
    let dims = tensor.dims().to_vec();
    let (nusers, nitems, nwords) = (dims[0], dims[1], dims[2]);
    println!(
        "review tensor: {nusers} users x {nitems} items x {nwords} words, {} nnz",
        tensor.nnz()
    );

    // Non-negative l1: non-negativity makes components additive (parts of
    // taste), l1 keeps each component's word list short.
    let factorizer = Factorizer::new(12)
        .constrain_all(constraints::nonneg_lasso(0.05))
        .sparsity(SparsityConfig::default())
        .max_outer(25)
        .seed(3);
    let result = factorizer.factorize(&tensor).expect("factorization");
    println!(
        "factorized in {:.2}s, relative error {:.4}",
        result.trace.total.as_secs_f64(),
        result.trace.final_error
    );

    // Put the model into service: publish a coherent snapshot, stand up
    // the shared engine. From here on, every read goes through the
    // serving API — batched point reconstruction and pruned top-K.
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(result.model);
    let engine = Arc::new(ServeEngine::new(Arc::clone(&registry)));

    // Rank items for a (user, word) context: free mode 1, anchored at
    // the user's row and the context word's row.
    let user: Idx = 0;
    let word: Idx = 7;
    let recs = engine
        .topk(&TopKQuery {
            free_mode: 1,
            anchor: vec![user, 0, word],
            k: 5,
        })
        .expect("top-k");
    println!(
        "\ntop-5 items for user {user} in word context {word} (epoch {}):",
        recs.epoch
    );
    for (pos, (item, score)) in recs.hits.iter().enumerate() {
        let check = engine.predict(&[user, *item, word]).expect("predict");
        println!(
            "  #{:<2} item {item:<6} score {score:.4} (reconstruction {check:.4})",
            pos + 1
        );
    }

    // Now the streaming half: new reviews keep arriving. The streaming
    // factorizer warm-refits after every batch and publishes each refit
    // straight into the registry; readers never stop querying and never
    // see a torn model — only whole epochs.
    let cfg = StreamingConfig::new(factorizer.max_outer(30).tolerance(1e-7))
        .refit_outer(4)
        .policy(MergePolicy::never());
    let mut stream = StreamingFactorizer::new(tensor, cfg).expect("streaming factorizer");
    stream.attach_sink(Arc::clone(&registry) as Arc<dyn ModelSink>);

    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        // Two query threads hammer the engine while refits hot-swap.
        for t in 0..2u64 {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            s.spawn(move || {
                let mut hits = Vec::new();
                let mut i = t;
                while !stop.load(Ordering::Acquire) {
                    i += 1;
                    let coord = [
                        (i % nusers as u64) as Idx,
                        (i % nitems as u64) as Idx,
                        (i % nwords as u64) as Idx,
                    ];
                    engine.predict(&coord).expect("predict under refit");
                    engine
                        .topk_into(
                            &TopKQuery {
                                free_mode: 1,
                                anchor: coord.to_vec(),
                                k: 3,
                            },
                            &mut hits,
                        )
                        .expect("top-k under refit");
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // The ingest loop: batches of fresh reviews, one warm refit and
        // one hot-swap each.
        for b in 0..6u64 {
            let ops: Vec<StreamOp> = (0..40)
                .map(|j| StreamOp::Add {
                    coord: vec![
                        ((b * 31 + j * 7) % nusers as u64) as Idx,
                        ((b * 17 + j * 5) % nitems as u64) as Idx,
                        ((b * 13 + j * 3) % nwords as u64) as Idx,
                    ],
                    val: 1.0,
                })
                .collect();
            let record = stream.push_batch(&ops).expect("refit");
            println!(
                "ingested batch {b}: refit to rel error {:.4}, published epoch {}",
                record.rel_error,
                registry.epoch()
            );
        }
        stop.store(true, Ordering::Release);
    });
    println!(
        "served {} query pairs concurrently with {} hot-swaps",
        served.load(Ordering::Relaxed),
        registry.epoch() - 1
    );

    // Recommendations against the final refit, from the same engine.
    let recs = engine
        .topk(&TopKQuery {
            free_mode: 1,
            anchor: vec![user, 0, word],
            k: 5,
        })
        .expect("top-k");
    println!(
        "\ntop-5 items for user {user} after streaming (epoch {}):",
        recs.epoch
    );
    for (pos, (item, score)) in recs.hits.iter().enumerate() {
        println!("  #{:<2} item {item:<6} score {score:.4}", pos + 1);
    }
}
