//! Non-negative matrix factorization via AO-ADMM.
//!
//! The paper emphasizes that the framework "is equally applicable to
//! both matrices and higher order tensors" — a matrix is simply a
//! two-mode tensor. This example builds a sparse non-negative matrix
//! with planted block structure (a toy document x term corpus), factors
//! it with NMF (non-negativity) and with sparse NMF (non-negative l1),
//! and compares against the related-work projected-gradient baseline.
//!
//! Run with: `cargo run --release -p aoadmm --example nmf`

use admm::constraints;
use aoadmm::pgd::{pgd_factorize, PgdConfig};
use aoadmm::Factorizer;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sptensor::CooTensor;

/// A sparse documents x terms matrix with `k` planted topic blocks.
fn corpus(docs: usize, terms: usize, k: usize, seed: u64) -> CooTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut m = CooTensor::new(vec![docs, terms]).unwrap();
    for d in 0..docs {
        let topic = d % k;
        let t_lo = topic * terms / k;
        let t_hi = (topic + 1) * terms / k;
        // Mostly in-topic terms plus background noise.
        for _ in 0..30 {
            let t = if rng.gen::<f64>() < 0.85 {
                rng.gen_range(t_lo..t_hi)
            } else {
                rng.gen_range(0..terms)
            };
            m.push(&[d as u32, t as u32], rng.gen_range(1.0..4.0))
                .unwrap();
        }
    }
    m.dedup_sum();
    m
}

fn main() {
    let k = 6;
    let matrix = corpus(600, 900, k, 42);
    println!(
        "corpus matrix: {} docs x {} terms, {} nnz",
        matrix.dims()[0],
        matrix.dims()[1],
        matrix.nnz()
    );

    // Plain NMF.
    let nmf = Factorizer::new(k)
        .constrain_all(constraints::nonneg())
        .max_outer(40)
        .seed(1)
        .factorize(&matrix)
        .expect("NMF");
    println!(
        "NMF        : err {:.4} in {:>5.2}s ({} iters)",
        nmf.trace.final_error,
        nmf.trace.total.as_secs_f64(),
        nmf.trace.outer_iterations()
    );

    // Sparse NMF: l1 on the term factor keeps topics short.
    let snmf = Factorizer::new(k)
        .constrain_all(constraints::nonneg())
        .constrain_mode(1, constraints::nonneg_lasso(0.3))
        .max_outer(40)
        .seed(1)
        .factorize(&matrix)
        .expect("sparse NMF");
    println!(
        "sparse NMF : err {:.4} in {:>5.2}s (term factor density {:.1}%)",
        snmf.trace.final_error,
        snmf.trace.total.as_secs_f64(),
        100.0 * snmf.model.factor(1).density(0.0)
    );

    // Related-work baseline: projected gradient descent.
    let fz = Factorizer::new(k).constrain_all(constraints::nonneg());
    let pgd = pgd_factorize(
        &matrix,
        &fz,
        &PgdConfig {
            rank: k,
            max_outer: 40,
            seed: 1,
            ..Default::default()
        },
    )
    .expect("PGD");
    println!(
        "PGD (rel. work baseline): err {:.4} in {:>5.2}s",
        pgd.trace.final_error,
        pgd.trace.total.as_secs_f64()
    );

    // Topic recovery: for each component, its top terms should cluster
    // in one planted block.
    let terms = matrix.dims()[1];
    let tfac = snmf.model.factor(1);
    println!("\ntop terms per component (block size = {}):", terms / k);
    for f in 0..k {
        let mut scored: Vec<(usize, f64)> = (0..terms).map(|t| (t, tfac.get(t, f))).collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top: Vec<usize> = scored.iter().take(6).map(|&(t, _)| t).collect();
        // Majority block of the top terms.
        let mut counts = vec![0usize; k];
        for &t in &top {
            counts[(t * k / terms).min(k - 1)] += 1;
        }
        let (block, votes) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(b, &c)| (b, c))
            .unwrap();
        println!("  component {f}: top terms {top:?} -> block {block} ({votes}/6 agree)");
    }
}
