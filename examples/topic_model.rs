//! Topic-modelling scenario (the paper's Reddit motivation): a
//! user x community x word tensor, factorized with a *row-simplex*
//! constraint on the word mode so each component's word profile is a
//! probability distribution, and non-negativity elsewhere.
//!
//! Also demonstrates saving/loading tensors in FROSTT `.tns` format.
//!
//! Run with: `cargo run --release -p aoadmm --example topic_model`

use admm::constraints;
use aoadmm::Factorizer;
use sptensor::gen::Analog;
use sptensor::io;

fn main() {
    let tensor = Analog::Reddit.generate(0.02, 5).expect("generator");
    println!(
        "comment tensor: {} users x {} communities x {} words, {} nnz",
        tensor.dims()[0],
        tensor.dims()[1],
        tensor.dims()[2],
        tensor.nnz()
    );

    // Round-trip through the FROSTT text format, as one would with real
    // downloaded data.
    let path = std::env::temp_dir().join("reddit_analog.tns");
    io::write_tns_file(&tensor, &path).expect("write .tns");
    let tensor = io::read_tns_file(&path, Some(tensor.dims().to_vec())).expect("read .tns");
    println!("round-tripped through {}", path.display());

    // Word mode (2) on the simplex: each row of the word factor is a
    // distribution over components; users and communities non-negative.
    let result = Factorizer::new(10)
        .constrain_all(constraints::nonneg())
        .constrain_mode(2, constraints::simplex())
        .max_outer(20)
        .seed(17)
        .factorize(&tensor)
        .expect("factorization");

    println!(
        "factorized in {:.2}s, relative error {:.4}",
        result.trace.total.as_secs_f64(),
        result.trace.final_error
    );

    // Verify and use the simplex structure: for each component, list the
    // most probable words.
    let wfac = result.model.factor(2);
    let rank = result.model.rank();
    let nwords = wfac.nrows();
    for f in 0..3.min(rank) {
        let mut words: Vec<(usize, f64)> = (0..nwords).map(|w| (w, wfac.get(w, f))).collect();
        words.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top: Vec<String> = words
            .iter()
            .take(5)
            .map(|(w, p)| format!("w{w}({p:.3})"))
            .collect();
        println!("topic {f}: {}", top.join(" "));
    }

    // Sanity: every word row sums to ~1 (it's a distribution).
    let worst = (0..nwords)
        .map(|w| {
            let s: f64 = wfac.row(w).iter().sum();
            (s - 1.0).abs()
        })
        .fold(0.0f64, f64::max);
    println!("max |row sum - 1| over word rows: {worst:.2e}");

    let _ = std::fs::remove_file(&path);
}
