//! Quickstart: factorize a synthetic sparse tensor with a non-negativity
//! constraint and inspect the result.
//!
//! Run with: `cargo run --release -p aoadmm --example quickstart`

use admm::constraints;
use aoadmm::Factorizer;
use sptensor::gen::{planted, PlantedConfig};
use sptensor::TensorStats;

fn main() {
    // 1. Get a sparse tensor. Here: synthetic data with planted rank-5
    //    non-negative structure and power-law slice popularity. Real data
    //    loads the same way via `sptensor::io::read_tns_file("x.tns", None)`.
    let tensor = planted(&PlantedConfig {
        dims: vec![500, 300, 400],
        nnz: 50_000,
        rank: 5,
        noise: 0.05,
        factor_density: 0.8,
        zipf_exponents: vec![1.0, 0.9, 1.0],
        seed: 42,
    })
    .expect("generator config is valid");

    println!("input tensor:\n{}", TensorStats::compute(&tensor).summary());

    // 2. Configure the factorization: rank 16, non-negative factors,
    //    everything else at the paper's defaults (blocked ADMM with
    //    50-row blocks, 20% sparsity threshold, 200 outer iterations).
    let result = Factorizer::new(16)
        .constrain_all(constraints::nonneg())
        .max_outer(40)
        .seed(7)
        .factorize(&tensor)
        .expect("factorization succeeds");

    // 3. Inspect convergence and the model.
    println!(
        "converged = {} after {} outer iterations in {:.2}s",
        result.trace.converged,
        result.trace.outer_iterations(),
        result.trace.total.as_secs_f64()
    );
    println!("relative error: {:.4}", result.trace.final_error);
    let (m, a, o) = result.trace.time_fractions();
    println!(
        "time split:  MTTKRP {m:.0}%  ADMM {a:.0}%  other {o:.0}%",
        m = m * 100.0,
        a = a * 100.0,
        o = o * 100.0
    );

    for mode in 0..3 {
        let f = result.model.factor(mode);
        println!(
            "factor {mode}: {}x{}, density {:.1}%",
            f.nrows(),
            f.ncols(),
            100.0 * f.density(0.0)
        );
    }

    // 4. The factors are plain row-major matrices — e.g. score one cell.
    let predicted = result.model.value_at(&[3, 2, 1]);
    println!("model value at (3,2,1): {predicted:.4}");
}
