//! Distributed-memory simulation walkthrough.
//!
//! The paper closes Section IV-B by noting that blockwise ADMM is
//! naturally distributed: blocks are independent, so the only
//! communication is the MTTKRP reduction. This example runs the
//! simulated coarse-grained distributed algorithm at several node
//! counts, shows that the answer never changes, and prints where the
//! communicated bytes go.
//!
//! Run with: `cargo run --release -p aoadmm-distsim --example distributed`

use admm::{constraints, AdmmConfig};
use aoadmm_distsim::{dist_factorize, CostModel, DistConfig};
use sptensor::gen::{planted, PlantedConfig};

fn main() {
    let tensor = planted(&PlantedConfig {
        dims: vec![600, 200, 400],
        nnz: 80_000,
        rank: 6,
        noise: 0.2,
        factor_density: 1.0,
        zipf_exponents: vec![0.9, 0.6, 0.9],
        seed: 5,
    })
    .expect("generator");
    println!("tensor: {:?}, {} nnz\n", tensor.dims(), tensor.nnz());

    // Fixed inner work makes the run bitwise node-count invariant.
    let mut admm_cfg = AdmmConfig::blocked(50);
    admm_cfg.tol = 0.0;
    admm_cfg.max_inner = 10;

    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "nodes", "rel err", "MTTKRP bytes", "factor bytes", "gram bytes", "est comm s"
    );
    for nodes in [1usize, 2, 4, 8] {
        let cfg = DistConfig {
            nnodes: nodes,
            rank: 16,
            max_outer: 6,
            tol: 0.0,
            seed: 9,
            admm: admm_cfg,
            cost: CostModel::default(),
        };
        let res = dist_factorize(&tensor, constraints::nonneg(), &cfg).expect("run");
        println!(
            "{nodes:>6} {:>10.5} {:>14} {:>14} {:>12} {:>12.5}",
            res.final_error,
            res.comm.mttkrp_bytes,
            res.comm.factor_bytes,
            res.comm.gram_bytes,
            res.est_comm_seconds
        );
    }
    println!(
        "\nNote: the relative error column is identical for every node count —\n\
         the distributed algorithm computes exactly the shared-memory result,\n\
         and no communicated byte is attributable to the ADMM phase."
    );
}
