//! Sharded execution walkthrough.
//!
//! The paper closes Section IV-B by noting that blockwise ADMM is
//! naturally distributed: blocks are independent, so the only
//! communication is the MTTKRP reduction. This example runs the real
//! sharded execution engine — per-shard CSF sets, SPMD worker threads,
//! typed message fabric — at several shard counts, shows that the answer
//! never changes, and prints where the measured wire bytes go (and that
//! they match the analytic prediction byte for byte).
//!
//! Run with: `cargo run --release -p aoadmm-distsim --example distributed`

use admm::{constraints, AdmmConfig};
use aoadmm::Factorizer;
use aoadmm_distsim::{shard_factorize, Phase, ShardConfig};
use sptensor::gen::{planted, PlantedConfig};

fn main() {
    let tensor = planted(&PlantedConfig {
        dims: vec![600, 200, 400],
        nnz: 80_000,
        rank: 6,
        noise: 0.2,
        factor_density: 1.0,
        zipf_exponents: vec![0.9, 0.6, 0.9],
        seed: 5,
    })
    .expect("generator");
    println!("tensor: {:?}, {} nnz\n", tensor.dims(), tensor.nnz());

    // Fixed inner work makes the run bitwise shard-count invariant.
    let mut admm_cfg = AdmmConfig::blocked(50);
    admm_cfg.tol = 0.0;
    admm_cfg.max_inner = 10;
    let cfg = Factorizer::new(16)
        .constrain_all(constraints::nonneg())
        .admm(admm_cfg)
        .max_outer(6)
        .tolerance(0.0)
        .seed(9);

    println!(
        "{:>7} {:>10} {:>13} {:>13} {:>11} {:>13} {:>11}",
        "shards", "rel err", "KReduce B", "FactorRows B", "Gram B", "max nnz", "est comm s"
    );
    for shards in [1usize, 2, 4, 8] {
        let res = shard_factorize(&tensor, &cfg, &ShardConfig::new(shards)).expect("run");
        assert_eq!(
            res.comm.diff_from_prediction(&res.predicted),
            None,
            "measured traffic deviates from the analytic model"
        );
        println!(
            "{shards:>7} {:>10.5} {:>13} {:>13} {:>11} {:>13} {:>11.5}",
            res.trace.final_error,
            res.comm.phase_bytes(Phase::KReduce),
            res.comm.phase_bytes(Phase::FactorRows),
            res.comm.phase_bytes(Phase::GramReduce),
            res.max_shard_nnz,
            res.est_comm_seconds
        );
    }
    println!(
        "\nNote: the relative error column is identical for every shard count —\n\
         the sharded engine computes exactly the shared-memory result, no\n\
         communicated byte is attributable to ADMM, and every byte on the\n\
         wire was predicted in advance by the communication model."
    );
}
