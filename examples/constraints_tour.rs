//! Tour of the constraint framework: run the same tensor through every
//! built-in proximity operator and compare fit, factor density and run
//! time — the "flexibly handles new constraints" claim of the paper in
//! one table.
//!
//! Also shows how to implement a *custom* constraint (here: integer-ish
//! quantization to steps of 0.25) with one trait impl.
//!
//! Run with: `cargo run --release -p aoadmm --example constraints_tour`

use admm::constraints;
use admm::prox::Prox;
use aoadmm::Factorizer;
use sptensor::gen::{planted, PlantedConfig};
use std::sync::Arc;

/// A custom row-separable constraint: snap every entry to the nearest
/// non-negative multiple of `step`. One method is all a new constraint
/// needs.
#[derive(Debug, Clone, Copy)]
struct Quantize {
    step: f64,
}

impl Prox for Quantize {
    fn apply_row(&self, row: &mut [f64], _rho: f64) {
        for x in row {
            *x = (*x / self.step).round().max(0.0) * self.step;
        }
    }

    fn is_feasible_row(&self, row: &[f64], tol: f64) -> bool {
        row.iter().all(|&x| {
            let snapped = (x / self.step).round().max(0.0) * self.step;
            (x - snapped).abs() <= tol
        })
    }

    fn induces_sparsity(&self) -> bool {
        true // values below step/2 snap to exactly zero
    }

    fn name(&self) -> &'static str {
        "quantize"
    }
}

fn main() {
    let tensor = planted(&PlantedConfig {
        dims: vec![250, 180, 220],
        nnz: 30_000,
        rank: 5,
        noise: 0.05,
        factor_density: 0.6,
        zipf_exponents: vec![1.0, 0.9, 1.0],
        seed: 21,
    })
    .expect("generator");

    let entries: Vec<(&str, Arc<dyn Prox>)> = vec![
        ("unconstrained", constraints::unconstrained()),
        ("non-negative", constraints::nonneg()),
        ("l1 (0.2)", constraints::lasso(0.2)),
        ("nonneg l1 (0.2)", constraints::nonneg_lasso(0.2)),
        ("ridge (0.5)", constraints::ridge(0.5)),
        ("box [0, 0.9]", constraints::boxed(0.0, 0.9)),
        ("row simplex", constraints::simplex()),
        ("max row norm 1", constraints::max_row_norm(1.0)),
        ("quantize 0.25 (custom)", Arc::new(Quantize { step: 0.25 })),
    ];

    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>8}",
        "constraint", "rel error", "time (s)", "avg density", "outers"
    );
    for (label, prox) in entries {
        let res = Factorizer::new(10)
            .constrain_all(prox)
            .max_outer(20)
            .seed(9)
            .factorize(&tensor)
            .expect("factorization");
        let avg_density =
            res.model.factor_densities(0.0).iter().sum::<f64>() / res.model.nmodes() as f64;
        println!(
            "{label:<24} {:>10.4} {:>10.2} {:>11.1}% {:>8}",
            res.trace.final_error,
            res.trace.total.as_secs_f64(),
            avg_density * 100.0,
            res.trace.outer_iterations()
        );
    }
}
