//! Property sweeps for the ALTO linearized substrate (seeded
//! [`testkit::TestRng`] loops; inputs are reproducible from the seeds
//! embedded below).
//!
//! Properties:
//!
//! * **Round-trip** — `encode_coords` followed by `decode_coords` is the
//!   identity on every in-bounds coordinate, across ragged mode sizes
//!   and shapes whose linearized index needs more than 32 bits.
//! * **Order + content** — the stored linearized indices are sorted
//!   (duplicates stay adjacent, in input order, and accumulate during
//!   the scatter) and group-summed they reproduce exactly the
//!   deduplicated nonzero set of the source tensor.
//! * **Cover** — the block partition tiles `0..nnz` contiguously with no
//!   gaps or overlaps; every nonzero's target-mode row falls inside its
//!   block's published interval; blocks flagged conflict-free overlap no
//!   other block's interval in that mode.

use aoadmm::alto::required_bits;
use aoadmm::AltoTensor;
use sptensor::{CooTensor, Idx};
use testkit::{gen, TestRng};

/// Ragged dims for 2-5 modes; roughly half the draws push the
/// linearized width past 32 bits (e.g. three modes of ~2^12 rows).
fn ragged_dims(rng: &mut TestRng) -> Vec<usize> {
    let nmodes = 2 + rng.index(4);
    (0..nmodes)
        .map(|_| {
            if rng.next_f64() < 0.4 {
                2 + rng.index(30) // narrow mode
            } else {
                1 << (9 + rng.index(5)) // 512..8192 rows
            }
        })
        .collect()
}

fn random_coords(rng: &mut TestRng, dims: &[usize]) -> Vec<Idx> {
    dims.iter().map(|&d| rng.index(d) as Idx).collect()
}

/// A sparse tensor over `dims` with `nnz` random entries (duplicates
/// allowed — ALTO must pre-accumulate them).
fn sparse_tensor(rng: &mut TestRng, dims: &[usize], nnz: usize) -> CooTensor {
    let mut t = CooTensor::new(dims.to_vec()).unwrap();
    for _ in 0..nnz {
        let c = random_coords(rng, dims);
        t.push(&c, rng.uniform(-2.0, 2.0)).unwrap();
    }
    t
}

#[test]
fn encode_decode_round_trips_on_ragged_dims() {
    let mut rng = TestRng::new(0xA170);
    let mut wide_cases = 0usize;
    for _trial in 0..40 {
        let dims = ragged_dims(&mut rng);
        assert!(AltoTensor::encodable(&dims));
        if required_bits(&dims) > 32 {
            wide_cases += 1;
        }
        let n = 1 + rng.index(64);
        let t = sparse_tensor(&mut rng, &dims, n);
        let alto = AltoTensor::build(&t).unwrap();
        let mut decoded = vec![0 as Idx; dims.len()];
        for _ in 0..64 {
            let coords = random_coords(&mut rng, &dims);
            let lin = alto.encode_coords(&coords);
            alto.decode_coords(lin, &mut decoded);
            assert_eq!(decoded, coords, "dims {dims:?}: round-trip");
        }
        // Corner coordinates stress every mask bit at once.
        let lo: Vec<Idx> = vec![0; dims.len()];
        let hi: Vec<Idx> = dims.iter().map(|&d| (d - 1) as Idx).collect();
        for coords in [lo, hi] {
            let lin = alto.encode_coords(&coords);
            alto.decode_coords(lin, &mut decoded);
            assert_eq!(decoded, coords, "dims {dims:?}: corner round-trip");
        }
    }
    assert!(
        wide_cases >= 8,
        "seed drift: only {wide_cases} draws exceeded 32 linearized bits"
    );
}

#[test]
fn masks_partition_the_linearized_bits() {
    let mut rng = TestRng::new(0xA171);
    for _trial in 0..40 {
        let dims = ragged_dims(&mut rng);
        let t = sparse_tensor(&mut rng, &dims, 8);
        let alto = AltoTensor::build(&t).unwrap();
        let mut seen: u64 = 0;
        for (m, &mask) in alto.masks().iter().enumerate() {
            assert_eq!(
                mask.count_ones(),
                (dims[m].max(2) - 1).ilog2() + 1,
                "mode {m} mask width, dims {dims:?}"
            );
            assert_eq!(seen & mask, 0, "mode {m} mask overlaps, dims {dims:?}");
            seen |= mask;
        }
        assert_eq!(seen.count_ones(), required_bits(&dims), "dims {dims:?}");
    }
}

#[test]
fn stored_indices_are_sorted_and_decode_to_the_dedup_multiset() {
    let mut rng = TestRng::new(0xA172);
    for _trial in 0..25 {
        let dims = ragged_dims(&mut rng);
        let n = 1 + rng.index(400);
        let t = sparse_tensor(&mut rng, &dims, n);
        let alto = AltoTensor::build(&t).unwrap();

        let lins = alto.linearized();
        assert!(
            lins.windows(2).all(|w| w[0] <= w[1]),
            "linearized indices not sorted"
        );
        assert_eq!(lins.len(), alto.nnz());
        assert_eq!(lins.len(), alto.values().len());

        // Group-sum adjacent duplicates, decode, and compare against the
        // deduplicated source.
        let mut want = t.clone();
        want.dedup_sum();
        let mut got: Vec<(Vec<Idx>, f64)> = Vec::new();
        let mut i = 0usize;
        while i < lins.len() {
            let mut j = i;
            let mut sum = 0.0f64;
            while j < lins.len() && lins[j] == lins[i] {
                sum += alto.values()[j];
                j += 1;
            }
            let mut c = vec![0 as Idx; dims.len()];
            alto.decode_coords(lins[i], &mut c);
            got.push((c, sum));
            i = j;
        }
        got.sort_by(|a, b| a.0.cmp(&b.0));
        let mut expect: Vec<(Vec<Idx>, f64)> = want.nonzeros().collect();
        expect.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(got.len(), expect.len(), "dims {dims:?}: dedup count");
        for ((gc, gv), (ec, ev)) in got.iter().zip(&expect) {
            assert_eq!(gc, ec, "dims {dims:?}: coordinate sets differ");
            assert!(
                (gv - ev).abs() <= 1e-12 * ev.abs().max(1.0),
                "dims {dims:?} coord {gc:?}: {gv} vs {ev}"
            );
        }
    }
}

#[test]
fn block_partition_is_a_bijective_cover_with_sound_intervals() {
    let mut rng = TestRng::new(0xA173);
    for _trial in 0..25 {
        let dims = ragged_dims(&mut rng);
        let nnz = 1 + rng.index(1200);
        let t = if rng.next_f64() < 0.5 {
            sparse_tensor(&mut rng, &dims, nnz)
        } else {
            gen::skewed_tensor(&dims, nnz, rng.uniform(0.5, 2.5), rng.next_u64())
        };
        let alto = AltoTensor::build(&t).unwrap();

        // Blocks tile 0..nnz contiguously: a bijective cover.
        let mut cursor = 0usize;
        for (b, blk) in alto.blocks().iter().enumerate() {
            assert_eq!(blk.start, cursor, "block {b}: gap or overlap");
            assert!(blk.end > blk.start, "block {b}: empty block");
            cursor = blk.end;
        }
        assert_eq!(cursor, alto.nnz(), "blocks do not cover all nonzeros");

        for mode in 0..dims.len() {
            let mut coords = vec![0 as Idx; dims.len()];
            for (b, blk) in alto.blocks().iter().enumerate() {
                let (lo, hi) = alto.block_interval(mode, b);
                assert!(lo < hi, "mode {mode} block {b}: empty interval");
                for i in blk.clone() {
                    alto.decode_coords(alto.linearized()[i], &mut coords);
                    let row = coords[mode];
                    assert!(
                        row >= lo && row < hi,
                        "mode {mode} block {b}: row {row} outside [{lo},{hi})"
                    );
                }
                if alto.block_conflict_free(mode, b) {
                    for other in 0..alto.blocks().len() {
                        if other == b {
                            continue;
                        }
                        let (olo, ohi) = alto.block_interval(mode, other);
                        assert!(
                            hi <= olo || ohi <= lo,
                            "mode {mode}: conflict-free block {b} [{lo},{hi}) \
                             overlaps block {other} [{olo},{ohi})"
                        );
                    }
                }
            }
        }
    }
}
