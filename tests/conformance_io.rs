//! Conformance: serialization round-trips and checkpoint/resume are
//! bit-exact.
//!
//! The text model format stores every value with 17 significant digits,
//! which uniquely identifies any finite double, so `write -> read` must
//! reproduce factors and duals to the bit. On top of that, an
//! interrupted run resumed from a checkpoint must follow the *same
//! trajectory* as an uninterrupted run: the driver's per-iteration state
//! is exactly `(factors, duals)`, and every kernel on the default
//! (blocked) path is deterministic.

use aoadmm::checkpoint::Checkpoint;
use aoadmm::model_io::{read_model, write_model};
use aoadmm::{Factorizer, KruskalModel};
use proptest::prelude::*;
use splinalg::DMat;
use testkit::{gen, TestRng};

/// Factors whose entries span ~600 decimal orders of magnitude, to
/// exercise the formatter well beyond "nice" values.
fn wild_factors(dims: &[usize], rank: usize, seed: u64) -> Vec<DMat> {
    let mut rng = TestRng::new(seed);
    dims.iter()
        .map(|&d| {
            let mut m = DMat::zeros(d, rank);
            for v in m.as_mut_slice() {
                let exp = rng.index(601) as i32 - 300;
                *v = rng.uniform(-1.0, 1.0) * 10f64.powi(exp);
            }
            m
        })
        .collect()
}

fn assert_bit_identical(label: &str, a: &DMat, b: &DMat) {
    assert_eq!(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
        "{label}: shape"
    );
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: entry {i} changed across the round-trip: {x:.17e} vs {y:.17e}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn model_write_read_is_bit_exact(
        nmodes in 2usize..=4,
        dim in 1usize..=9,
        rank in 1usize..=5,
        seed in any::<u64>(),
    ) {
        let dims: Vec<usize> = (0..nmodes).map(|m| dim + m).collect();
        let model = KruskalModel::new(wild_factors(&dims, rank, seed));
        let mut buf = Vec::new();
        write_model(&model, &mut buf).unwrap();
        let back = read_model(buf.as_slice()).unwrap();
        prop_assert_eq!(back.nmodes(), model.nmodes());
        prop_assert_eq!(back.rank(), model.rank());
        for m in 0..model.nmodes() {
            assert_bit_identical(&format!("model mode {m}"), back.factor(m), model.factor(m));
        }
    }

    #[test]
    fn checkpoint_write_read_is_bit_exact(
        dim in 2usize..=7,
        rank in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let dims = [dim, dim + 1, dim + 2];
        let ck = Checkpoint {
            model: KruskalModel::new(wild_factors(&dims, rank, seed)),
            duals: wild_factors(&dims, rank, seed ^ 0x5A5A),
        };
        let mut buf = Vec::new();
        ck.write(&mut buf).unwrap();
        let back = Checkpoint::read(buf.as_slice()).unwrap();
        for m in 0..3 {
            assert_bit_identical(
                &format!("checkpoint factor {m}"),
                back.model.factor(m),
                ck.model.factor(m),
            );
            assert_bit_identical(&format!("checkpoint dual {m}"), &back.duals[m], &ck.duals[m]);
        }
    }
}

#[test]
fn checkpoint_of_a_real_run_round_trips() {
    let coo = gen::tensor(&[10, 9, 8], 300, 801);
    let result = Factorizer::new(3)
        .max_outer(4)
        .seed(2)
        .factorize(&coo)
        .unwrap();
    let ck = Checkpoint::from_result(&result);
    let mut buf = Vec::new();
    ck.write(&mut buf).unwrap();
    let back = Checkpoint::read(buf.as_slice()).unwrap();
    for m in 0..3 {
        assert_bit_identical("run factor", back.model.factor(m), result.model.factor(m));
        assert_bit_identical("run dual", &back.duals[m], &result.duals[m]);
    }
}

#[test]
fn resume_from_checkpoint_reproduces_the_uninterrupted_trajectory() {
    // 12 outer iterations straight through must equal 5 + 7 with a
    // serialized checkpoint in between, to the bit. `tolerance(-1.0)`
    // disables early stopping so both runs execute the same iteration
    // counts; everything on the blocked path is deterministic.
    let coo = gen::skewed_tensor(&[14, 12, 10], 700, 2.0, 811);
    let cfg = |outers: usize| Factorizer::new(4).seed(9).tolerance(-1.0).max_outer(outers);
    let full = cfg(12).factorize(&coo).unwrap();

    let first = cfg(5).factorize(&coo).unwrap();
    let mut buf = Vec::new();
    Checkpoint::from_result(&first).write(&mut buf).unwrap();
    let ck = Checkpoint::read(buf.as_slice()).unwrap();
    let resumed = cfg(7)
        .factorize_warm(&coo, ck.model, Some(ck.duals))
        .unwrap();

    for m in 0..3 {
        assert_eq!(
            full.model.factor(m).max_abs_diff(resumed.model.factor(m)),
            0.0,
            "factor {m} diverged across checkpoint/resume"
        );
        assert_eq!(
            full.duals[m].max_abs_diff(&resumed.duals[m]),
            0.0,
            "dual {m} diverged across checkpoint/resume"
        );
    }
    assert_eq!(full.trace.final_error, resumed.trace.final_error);
}
