//! Property-based tests over the full stack: random tensors, random
//! shapes, random constraints — the invariants must hold for all of them.

use admm::constraints;
use aoadmm::mttkrp::{mttkrp_dense, mttkrp_reference};
use aoadmm::Factorizer;
use proptest::prelude::*;
use splinalg::DMat;
use sptensor::{CooTensor, Csf, Idx};

/// Strategy: a small random COO tensor with 2-4 modes.
fn coo_strategy() -> impl Strategy<Value = CooTensor> {
    (2usize..=4)
        .prop_flat_map(|nmodes| {
            (
                proptest::collection::vec(2usize..12, nmodes),
                1usize..120,
                any::<u64>(),
            )
        })
        .prop_map(|(dims, nnz, seed)| {
            sptensor::gen::random_uniform(&dims, nnz, seed).expect("valid dims")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csf_roundtrips_any_tensor(coo in coo_strategy(), root in 0usize..4) {
        let root = root % coo.nmodes();
        let csf = Csf::from_coo_rooted(&coo, root).unwrap();
        prop_assert_eq!(csf.nnz(), coo.nnz());
        let mut back = csf.to_coo();
        let order: Vec<usize> = (0..coo.nmodes()).collect();
        back.sort_by_mode_order(&order);
        let mut orig = coo.clone();
        orig.sort_by_mode_order(&order);
        prop_assert_eq!(back, orig);
    }

    #[test]
    fn mttkrp_kernel_matches_reference(coo in coo_strategy(), root in 0usize..4, f in 1usize..6, seed in any::<u64>()) {
        let root = root % coo.nmodes();
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let factors: Vec<DMat> = coo
            .dims()
            .iter()
            .map(|&d| DMat::random(d, f, -1.0, 1.0, &mut rng))
            .collect();
        let csf = Csf::from_coo_rooted(&coo, root).unwrap();
        let mut out = DMat::zeros(coo.dims()[root], f);
        mttkrp_dense(&csf, &factors, &mut out).unwrap();
        let reference = mttkrp_reference(&coo, &factors, root).unwrap();
        prop_assert!(out.max_abs_diff(&reference) < 1e-9);
    }

    #[test]
    fn factorization_never_increases_error_much(coo in coo_strategy(), seed in any::<u64>()) {
        // AO with exact-enough inner solves is monotone; allow tiny slack
        // for the inexact ADMM inner solver.
        let res = Factorizer::new(3)
            .constrain_all(constraints::nonneg())
            .max_outer(6)
            .seed(seed)
            .factorize(&coo)
            .unwrap();
        let errs: Vec<f64> = res.trace.iterations.iter().map(|i| i.rel_error).collect();
        for w in errs.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-3, "errors: {:?}", errs);
        }
        // Error is a normalized metric: finite and non-negative.
        prop_assert!(res.trace.final_error.is_finite());
        prop_assert!(res.trace.final_error >= 0.0);
    }

    #[test]
    fn nonneg_factorization_is_feasible_for_any_input(coo in coo_strategy(), seed in any::<u64>()) {
        let res = Factorizer::new(2)
            .constrain_all(constraints::nonneg())
            .max_outer(4)
            .seed(seed)
            .factorize(&coo)
            .unwrap();
        for m in 0..coo.nmodes() {
            prop_assert!(res.model.factor(m).as_slice().iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn model_value_is_multilinear(
        dims in proptest::collection::vec(2usize..8, 3),
        f in 1usize..5,
        seed in any::<u64>(),
        scale in 0.1f64..10.0,
    ) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let factors: Vec<DMat> = dims.iter().map(|&d| DMat::random(d, f, -1.0, 1.0, &mut rng)).collect();
        let model = aoadmm::KruskalModel::new(factors.clone());

        // Scaling one factor scales every model value linearly.
        let mut scaled = factors;
        scaled[1].scale(scale);
        let scaled_model = aoadmm::KruskalModel::new(scaled);

        let coord: Vec<Idx> = dims.iter().map(|&d| (d as Idx) - 1).collect();
        let a = model.value_at(&coord) * scale;
        let b = scaled_model.value_at(&coord);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn tns_io_roundtrips(coo in coo_strategy()) {
        let mut buf = Vec::new();
        sptensor::io::write_tns(&coo, &mut buf).unwrap();
        let back = sptensor::io::read_tns(buf.as_slice(), Some(coo.dims().to_vec())).unwrap();
        prop_assert_eq!(back, coo);
    }
}
