//! Differential conformance for the panelized dense-kernel layer.
//!
//! The panel kernels (`panel::gram_into`, `Cholesky::solve_panel` /
//! `solve_mat_panel`, and the panel ADMM row sweep behind
//! `admm_update_ws`) are performance rewrites of scalar kernels whose
//! outputs are pinned bit-for-bit: every per-entry floating-point
//! operation happens in the same order as in the scalar path, so the
//! results must be *identical*, not merely close. This suite checks
//!
//! * each panel kernel against the `testkit` oracle (tolerance-based —
//!   the oracle uses a different summation order), and
//! * each panel kernel against its legacy scalar implementation
//!   bit-for-bit (`f64::to_bits` equality), across ranks
//!   `F in {1, 8, 16, 32}` and 1/2/4-thread rayon pools.
//!
//! Rank 1 exercises the degenerate panels, 8/16 the remainder loops,
//! and 32 a full `PANEL_ROWS`-wide right-hand side.

use admm::prox::NonNeg;
use admm::{admm_update_reference, admm_update_ws, AdaptiveRho, AdmmConfig, AdmmWorkspace, Prox};
use splinalg::panel::{self, PANEL_ROWS};
use splinalg::{Cholesky, DMat, Workspace};
use testkit::tolerance::{KERNEL_ATOL, KERNEL_RTOL};
use testkit::{assert_mats_close, gen, oracle};

const RANKS: [usize; 4] = [1, 8, 16, 32];
const THREADS: [usize; 3] = [1, 2, 4];

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

fn assert_bits_equal(what: &str, got: &DMat, want: &DMat) {
    assert_eq!(got.nrows(), want.nrows(), "{what}: row count");
    assert_eq!(got.ncols(), want.ncols(), "{what}: col count");
    for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: entry {i} differs: {a:e} vs {b:e}"
        );
    }
}

/// A tall factor with a mix of dense and exactly-zero rows, so the panel
/// gram kernel's quad loop, remainder loop and zero-skip paths all run.
fn tall_factor(nrows: usize, f: usize, seed: u64) -> DMat {
    let mut a = gen::factors(&[nrows], f, -1.0, 1.0, seed).pop().unwrap();
    for r in (0..nrows).step_by(7) {
        for c in 0..f {
            a.set(r, c, 0.0);
        }
    }
    a
}

#[test]
fn panel_gram_matches_oracle_and_legacy_bitwise() {
    // Row counts around the parallel chunking (512) and panel (4-row
    // micro-kernel) boundaries.
    for &f in &RANKS {
        for (si, &n) in [1usize, 5, 100, 513, 1100].iter().enumerate() {
            let a = tall_factor(n, f, 700 + si as u64);
            let want_oracle = oracle::gram(&a);
            let legacy = a.gram();
            for &threads in &THREADS {
                let mut ws = Workspace::new();
                let mut out = DMat::zeros(f, f);
                pool(threads)
                    .install(|| panel::gram_into(&a, &mut ws, &mut out))
                    .unwrap();
                assert_mats_close(
                    &format!("panel gram vs oracle, n={n} f={f} threads={threads}"),
                    &out,
                    &want_oracle,
                    KERNEL_RTOL,
                    KERNEL_ATOL,
                );
                assert_bits_equal(
                    &format!("panel gram vs legacy, n={n} f={f} threads={threads}"),
                    &out,
                    &legacy,
                );
            }
        }
    }
}

#[test]
fn panel_solve_matches_oracle_and_scalar_bitwise() {
    for &f in &RANKS {
        // Rows straddling one, several and a partial PANEL_ROWS panel.
        for &n in &[1usize, PANEL_ROWS, 3 * PANEL_ROWS + 7] {
            let w = gen::factors(&[2 * f + 3], f, 0.1, 1.0, 800 + f as u64)
                .pop()
                .unwrap();
            let gram = w.gram();
            let rho = gram.trace() / f as f64;
            let k = gen::factors(&[n], f, -2.0, 2.0, 801 + f as u64)
                .pop()
                .unwrap();

            let chol = Cholesky::factor_shifted(&gram, rho).unwrap();

            // Scalar path: one solve_row per row.
            let mut scalar = k.clone();
            for r in 0..n {
                chol.solve_row(scalar.row_mut(r));
            }

            // Oracle: exact least-squares rows against G + rho I.
            let mut normal = gram.clone();
            normal.add_diag(rho);
            let want = oracle::least_squares_rows(&normal, &k).unwrap();
            assert_mats_close(
                &format!("scalar solve vs oracle, n={n} f={f}"),
                &scalar,
                &want,
                KERNEL_RTOL,
                KERNEL_ATOL,
            );

            for &threads in &THREADS {
                let mut ws = Workspace::new();
                let mut panel_out = k.clone();
                pool(threads)
                    .install(|| chol.solve_mat_panel(&mut panel_out, &mut ws))
                    .unwrap();
                assert_bits_equal(
                    &format!("panel solve vs scalar, n={n} f={f} threads={threads}"),
                    &panel_out,
                    &scalar,
                );
            }
        }
    }
}

/// Shared ADMM problem: a Gram from a thin random factor and an MTTKRP
/// stand-in with sign flips so the non-negativity constraint is active.
fn admm_problem(n: usize, f: usize, seed: u64) -> (DMat, DMat) {
    let w = gen::factors(&[2 * f + 1], f, 0.1, 1.0, seed).pop().unwrap();
    let mut k = gen::factors(&[n], f, 0.0, 2.0, seed + 1).pop().unwrap();
    for v in k.as_mut_slice().iter_mut().step_by(3) {
        *v = -*v;
    }
    (w.gram(), k)
}

#[test]
fn blocked_admm_ws_is_bit_identical_to_scalar_reference() {
    // Early stopping and adaptive rho stay enabled: per-block decisions
    // are sequential row-order sums in both paths, so even the control
    // flow must match exactly.
    for &f in &RANKS {
        let n = 150;
        let (gram, k) = admm_problem(n, f, 900 + f as u64);
        for adaptive in [None, Some(AdaptiveRho::default())] {
            let mut cfg = AdmmConfig::blocked(50);
            cfg.tol = 1e-9;
            cfg.max_inner = 120;
            cfg.adaptive_rho = adaptive;

            let mut h_ref = DMat::zeros(n, f);
            let mut u_ref = DMat::zeros(n, f);
            let stats_ref =
                admm_update_reference(&gram, &k, &mut h_ref, &mut u_ref, &NonNeg, &cfg).unwrap();

            for &threads in &THREADS {
                let mut h = DMat::zeros(n, f);
                let mut u = DMat::zeros(n, f);
                let mut ws = AdmmWorkspace::new();
                let stats = pool(threads)
                    .install(|| admm_update_ws(&gram, &k, &mut h, &mut u, &NonNeg, &cfg, &mut ws))
                    .unwrap();
                let tag = format!(
                    "blocked f={f} threads={threads} adaptive={}",
                    adaptive.is_some()
                );
                assert_bits_equal(&format!("{tag}: H"), &h, &h_ref);
                assert_bits_equal(&format!("{tag}: U"), &u, &u_ref);
                assert_eq!(stats, stats_ref, "{tag}: stats");
            }
        }
    }
}

#[test]
fn fused_admm_ws_matches_reference_trajectory() {
    // The fused reference reduces residual partials in work-stealing
    // order, so its *stats* are not bit-stable; with tol = 0 both paths
    // run exactly max_inner iterations and the per-row updates (which
    // never read the reduction) must agree bit-for-bit. The workspace
    // path's own reduction is deterministic, so its stats are also
    // checked for thread-count invariance.
    for &f in &RANKS {
        let n = 130;
        let (gram, k) = admm_problem(n, f, 950 + f as u64);
        let mut cfg = AdmmConfig::fused();
        cfg.tol = 0.0;
        cfg.max_inner = 30;

        let mut h_ref = DMat::zeros(n, f);
        let mut u_ref = DMat::zeros(n, f);
        admm_update_reference(&gram, &k, &mut h_ref, &mut u_ref, &NonNeg, &cfg).unwrap();

        let mut first_stats = None;
        for &threads in &THREADS {
            let mut h = DMat::zeros(n, f);
            let mut u = DMat::zeros(n, f);
            let mut ws = AdmmWorkspace::new();
            let stats = pool(threads)
                .install(|| admm_update_ws(&gram, &k, &mut h, &mut u, &NonNeg, &cfg, &mut ws))
                .unwrap();
            let tag = format!("fused f={f} threads={threads}");
            assert_bits_equal(&format!("{tag}: H"), &h, &h_ref);
            assert_bits_equal(&format!("{tag}: U"), &u, &u_ref);
            match &first_stats {
                None => first_stats = Some(stats),
                Some(s) => assert_eq!(&stats, s, "{tag}: stats drift across thread counts"),
            }
        }
    }
}

#[test]
fn workspace_reuse_across_shapes_matches_fresh_workspace() {
    // A workspace warmed on one problem shape must not leak state (stale
    // Cholesky factors, oversized panels, old block outcomes) into a
    // later, smaller problem.
    let mut ws = AdmmWorkspace::new();
    let shapes = [(200usize, 16usize), (37, 3), (64, 8), (5, 1)];
    for (si, &(n, f)) in shapes.iter().enumerate() {
        let (gram, k) = admm_problem(n, f, 980 + si as u64);
        for strategy_cfg in [AdmmConfig::blocked(50), AdmmConfig::fused()] {
            let mut cfg = strategy_cfg;
            cfg.tol = 1e-9;
            cfg.max_inner = 60;
            cfg.adaptive_rho = Some(AdaptiveRho::default());

            let mut h_fresh = DMat::zeros(n, f);
            let mut u_fresh = DMat::zeros(n, f);
            admm_update_ws(
                &gram,
                &k,
                &mut h_fresh,
                &mut u_fresh,
                &NonNeg,
                &cfg,
                &mut AdmmWorkspace::new(),
            )
            .unwrap();

            let mut h = DMat::zeros(n, f);
            let mut u = DMat::zeros(n, f);
            admm_update_ws(&gram, &k, &mut h, &mut u, &NonNeg, &cfg, &mut ws).unwrap();
            let tag = format!("reused ws, shape ({n}, {f})");
            assert_bits_equal(&format!("{tag}: H"), &h, &h_fresh);
            assert_bits_equal(&format!("{tag}: U"), &u, &u_fresh);
        }
    }
}

#[test]
fn panel_sweep_preserves_feasibility() {
    // The panel row sweep must call the prox exactly once per row per
    // iteration; feasibility of the output is a cheap end-to-end check
    // that no row is skipped at panel boundaries.
    for &f in &RANKS {
        for &n in &[
            PANEL_ROWS - 1,
            PANEL_ROWS,
            PANEL_ROWS + 1,
            4 * PANEL_ROWS + 3,
        ] {
            let (gram, k) = admm_problem(n, f, 990 + f as u64);
            let mut h = DMat::zeros(n, f);
            let mut u = DMat::zeros(n, f);
            let mut ws = AdmmWorkspace::new();
            admm_update_ws(
                &gram,
                &k,
                &mut h,
                &mut u,
                &NonNeg,
                &AdmmConfig::blocked(50),
                &mut ws,
            )
            .unwrap();
            for r in 0..n {
                assert!(
                    NonNeg.is_feasible_row(h.row(r), 1e-12),
                    "row {r} infeasible (n={n}, f={f})"
                );
            }
        }
    }
}
