//! Approximate top-K conformance: the recall bound and the exactness
//! of the rescoring stage.
//!
//! The approximate tier is a two-stage design: a bf16-quantized scan
//! over norm-ordered rows selects `oversample * k` survivors (with an
//! early-termination bound), then the survivors are rescored with the
//! same ascending-column f64 kernel the exact path uses. Two contracts
//! fall out:
//!
//! 1. **Rescoring is bit-exact.** Every score the approximate tier
//!    returns is bit-identical to the exact path's score for that row.
//!    With the scan degenerated (oversample covers every row, zero
//!    guard), the whole answer — ids, order, score bits — equals the
//!    exact top-K.
//! 2. **Recall bound.** On power-law norm fixtures (the distribution
//!    the norm-ordered scan is designed for), the default policy
//!    achieves recall@10 ≥ 0.99 against the exact oracle, unsharded
//!    and sharded alike.

use aoadmm::KruskalModel;
use aoadmm_serve::{
    ApproxPolicy, ModelRegistry, ServeEngine, ShardedEngine, ShardedRegistry, TopKQuery,
};
use sptensor::Idx;
use std::sync::Arc;
use testkit::gen;

const DIMS: [usize; 3] = [600, 10, 8];
const RANK: usize = 8;
const K: usize = 10;
const QUERIES: u64 = 60;

/// Random factors with the free mode's row norms decaying as a power
/// law `(i+1)^-alpha` — the skewed-popularity shape that makes
/// norm-ordered early termination effective.
fn power_law_model(alpha: f64, seed: u64) -> KruskalModel {
    let mut factors = gen::factors(&DIMS, RANK, -1.0, 1.0, seed);
    let rows = factors[0].nrows();
    for i in 0..rows {
        let scale = ((i + 1) as f64).powf(-alpha);
        for v in factors[0].row_mut(i) {
            *v *= scale;
        }
    }
    KruskalModel::new(factors)
}

fn engine_for(model: &KruskalModel) -> ServeEngine {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(model.clone());
    ServeEngine::new(registry)
}

fn query_for(i: u64, k: usize) -> TopKQuery {
    TopKQuery {
        free_mode: 0,
        anchor: vec![
            0,
            ((i * 7 + 3) % DIMS[1] as u64) as Idx,
            ((i * 11 + 1) % DIMS[2] as u64) as Idx,
        ],
        k,
    }
}

fn recall_at_k(approx: &[(Idx, f64)], exact: &[(Idx, f64)]) -> f64 {
    let hit = approx
        .iter()
        .filter(|(id, _)| exact.iter().any(|(eid, _)| eid == id))
        .count();
    hit as f64 / exact.len() as f64
}

#[test]
fn degenerate_policy_is_bit_identical_to_exact_topk() {
    let model = power_law_model(0.8, 101);
    let engine = engine_for(&model);
    // Oversample covering every row and zero guard means the scan
    // cannot prune: the approximate tier must reproduce the exact
    // answer bit for bit.
    let full = ApproxPolicy {
        oversample: DIMS[0],
        guard: 0.0,
    };
    for i in 0..QUERIES {
        let q = query_for(i, K);
        let exact = engine.topk(&q).unwrap().hits;
        let mut approx = Vec::new();
        engine.topk_approx_into_with(&q, full, &mut approx).unwrap();
        assert_eq!(approx.len(), exact.len());
        for (a, e) in approx.iter().zip(&exact) {
            assert_eq!(a.0, e.0, "query {i}");
            assert_eq!(a.1.to_bits(), e.1.to_bits(), "query {i} id {}", a.0);
        }
    }
}

#[test]
fn returned_scores_always_carry_exact_bits() {
    let model = power_law_model(0.8, 202);
    let engine = engine_for(&model);
    // Even when the scan prunes aggressively, whatever it returns must
    // be scored by the exact kernel: compare against the full ranking.
    let tight = ApproxPolicy {
        oversample: 2,
        guard: 0.005,
    };
    for i in 0..QUERIES {
        let q = query_for(i, K);
        let full = engine.topk(&query_for(i, DIMS[0])).unwrap().hits;
        let mut approx = Vec::new();
        engine
            .topk_approx_into_with(&q, tight, &mut approx)
            .unwrap();
        for &(id, score) in &approx {
            let want = full.iter().find(|&&(fid, _)| fid == id).unwrap().1;
            assert_eq!(score.to_bits(), want.to_bits(), "query {i} id {id}");
        }
    }
}

#[test]
fn recall_at_10_meets_bound_on_power_law_fixtures() {
    // Several skews and seeds; the default policy must hold the
    // recall@10 ≥ 0.99 bound on all of them.
    for (alpha, seed) in [(0.5, 11), (0.8, 22), (1.2, 33)] {
        let model = power_law_model(alpha, seed);
        let engine = engine_for(&model);
        let mut total = 0.0;
        for i in 0..QUERIES {
            let q = query_for(i, K);
            let exact = engine.topk(&q).unwrap().hits;
            let approx = engine.topk_approx(&q).unwrap().hits;
            total += recall_at_k(&approx, &exact);
        }
        let recall = total / QUERIES as f64;
        assert!(
            recall >= 0.99,
            "alpha={alpha} seed={seed}: recall@10 {recall} < 0.99"
        );
    }
}

#[test]
fn sharded_approx_recall_matches_bound() {
    let model = power_law_model(0.8, 44);
    let exact_engine = engine_for(&model);
    for nshards in [2, 5] {
        let registry = Arc::new(ShardedRegistry::new(0, nshards));
        registry.publish(model.clone()).unwrap();
        let sharded = ShardedEngine::new(registry);
        let mut total = 0.0;
        for i in 0..QUERIES {
            let q = query_for(i, K);
            let exact = exact_engine.topk(&q).unwrap().hits;
            let approx = sharded.topk_approx(&q).unwrap().hits;
            // Sharded scores are still exact-kernel bits.
            for &(id, score) in &approx {
                if let Some(&(_, want)) = exact.iter().find(|&&(eid, _)| eid == id) {
                    assert_eq!(score.to_bits(), want.to_bits());
                }
            }
            total += recall_at_k(&approx, &exact);
        }
        let recall = total / QUERIES as f64;
        assert!(
            recall >= 0.99,
            "nshards={nshards}: recall@10 {recall} < 0.99"
        );
    }
}

#[test]
fn recall_improves_monotonically_with_oversample() {
    let model = power_law_model(0.8, 55);
    let engine = engine_for(&model);
    let mut last = 0.0;
    for oversample in [1usize, 2, 4] {
        let policy = ApproxPolicy {
            oversample,
            guard: 0.01,
        };
        let mut total = 0.0;
        for i in 0..QUERIES {
            let q = query_for(i, K);
            let exact = engine.topk(&q).unwrap().hits;
            let mut approx = Vec::new();
            engine
                .topk_approx_into_with(&q, policy, &mut approx)
                .unwrap();
            total += recall_at_k(&approx, &exact);
        }
        let recall = total / QUERIES as f64;
        assert!(
            recall >= last - 1e-12,
            "recall regressed at oversample={oversample}: {recall} < {last}"
        );
        last = recall;
    }
    assert!(last >= 0.99, "oversample=4 recall {last} < 0.99");
}
