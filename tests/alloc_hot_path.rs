//! Allocation counter for the AO-ADMM hot path.
//!
//! The workspace refactor's contract is that once every grow-once buffer
//! has reached its high-water mark, a steady-state mode update — combined
//! Gram (`gram_hadamard_into`), Cholesky re-factorization + ADMM row
//! sweep (`admm_update_ws`), Gram refresh (`panel::gram_into`), panel
//! solves (`solve_mat_panel`) and the fit check (`model_norm_sq`) —
//! performs **zero** heap allocation. This test installs a counting
//! global allocator (which is why it is its own test binary), warms the
//! workspaces with one full round of calls, then repeats the identical
//! calls with counting enabled and asserts the count stayed at zero.

use admm::prox::NonNeg;
use admm::{admm_update_ws, AdaptiveRho, AdmmConfig, AdmmWorkspace};
use splinalg::{ops, panel, Cholesky, DMat, Workspace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static TRACKING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `body` with allocation counting enabled and return how many heap
/// allocations it performed.
fn count_allocations(body: impl FnOnce()) -> usize {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    body();
    TRACKING.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn problem(n: usize, f: usize, seed: u64) -> (Vec<DMat>, DMat) {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let grams: Vec<DMat> = (0..3)
        .map(|_| DMat::random(2 * f + 1, f, 0.1, 1.0, &mut rng).gram())
        .collect();
    let mut k = DMat::random(n, f, 0.0, 2.0, &mut rng);
    for v in k.as_mut_slice().iter_mut().step_by(3) {
        *v = -*v;
    }
    (grams, k)
}

#[test]
fn steady_state_mode_update_does_not_allocate() {
    let (n, f) = (150, 8);
    let (grams, k) = problem(n, f, 41);
    let mut gram_buf = DMat::zeros(f, f);
    let mut h = DMat::zeros(n, f);
    let mut u = DMat::zeros(n, f);
    let mut admm_ws = AdmmWorkspace::new();
    let mut lin_ws = Workspace::new();
    let mut gram_out = DMat::zeros(f, f);

    let mut cfg = AdmmConfig::blocked(50);
    cfg.adaptive_rho = Some(AdaptiveRho::default());
    cfg.max_inner = 40;

    let round = |gram_buf: &mut DMat,
                 h: &mut DMat,
                 u: &mut DMat,
                 admm_ws: &mut AdmmWorkspace,
                 lin_ws: &mut Workspace,
                 gram_out: &mut DMat| {
        ops::gram_hadamard_into(&grams, 0, gram_buf).unwrap();
        admm_update_ws(gram_buf, &k, h, u, &NonNeg, &cfg, admm_ws).unwrap();
        panel::gram_into(h, lin_ws, gram_out).unwrap();
        let _ = ops::model_norm_sq(&grams).unwrap();
    };

    // Warm-up: every grow-once buffer reaches its high-water mark.
    round(
        &mut gram_buf,
        &mut h,
        &mut u,
        &mut admm_ws,
        &mut lin_ws,
        &mut gram_out,
    );

    let allocs = count_allocations(|| {
        round(
            &mut gram_buf,
            &mut h,
            &mut u,
            &mut admm_ws,
            &mut lin_ws,
            &mut gram_out,
        );
    });
    assert_eq!(
        allocs, 0,
        "steady-state blocked mode update allocated {allocs} times"
    );
}

#[test]
fn steady_state_pds_update_does_not_allocate() {
    // The PDS inner solver shares the workspace contract: after one
    // update has grown every per-block scratch buffer (gradient,
    // reflection, operator image, previous iterates), steady-state
    // updates — including a composite TV constraint exercising the
    // operator and conjugate-prox paths — allocate nothing.
    use aoadmm_pds::{pds_constraints, pds_update_ws, PdsConfig, PdsWorkspace};

    let (n, f) = (150, 8);
    let (grams, k) = problem(n, f, 45);
    let mut gram_buf = DMat::zeros(f, f);
    let mut x = DMat::zeros(n, f);
    let mut ws = PdsWorkspace::new();
    let cfg = PdsConfig {
        max_inner: 40,
        ..PdsConfig::default()
    };

    for (label, constraint, dual_cols) in [
        (
            "prox-only",
            pds_constraints::from_prox(std::sync::Arc::new(NonNeg)),
            f,
        ),
        ("composite TV", pds_constraints::tv(0.2), f - 1),
    ] {
        let mut y = DMat::zeros(n, dual_cols);
        let round = |x: &mut DMat, y: &mut DMat, gram_buf: &mut DMat, ws: &mut PdsWorkspace| {
            ops::gram_hadamard_into(&grams, 0, gram_buf).unwrap();
            pds_update_ws(gram_buf, &k, x, y, &constraint, &cfg, ws).unwrap();
        };

        // Warm-up: per-block scratch reaches its high-water mark.
        round(&mut x, &mut y, &mut gram_buf, &mut ws);

        let allocs = count_allocations(|| {
            round(&mut x, &mut y, &mut gram_buf, &mut ws);
        });
        assert_eq!(
            allocs, 0,
            "steady-state PDS update ({label}) allocated {allocs} times"
        );
    }
}

#[test]
fn steady_state_fused_update_does_not_allocate() {
    let (n, f) = (130, 6);
    let (grams, k) = problem(n, f, 43);
    let mut gram_buf = DMat::zeros(f, f);
    let mut h = DMat::zeros(n, f);
    let mut u = DMat::zeros(n, f);
    let mut ws = AdmmWorkspace::new();
    let mut cfg = AdmmConfig::fused();
    cfg.max_inner = 30;

    ops::gram_hadamard_into(&grams, 1, &mut gram_buf).unwrap();
    admm_update_ws(&gram_buf, &k, &mut h, &mut u, &NonNeg, &cfg, &mut ws).unwrap();

    let allocs = count_allocations(|| {
        ops::gram_hadamard_into(&grams, 1, &mut gram_buf).unwrap();
        admm_update_ws(&gram_buf, &k, &mut h, &mut u, &NonNeg, &cfg, &mut ws).unwrap();
    });
    assert_eq!(
        allocs, 0,
        "steady-state fused mode update allocated {allocs} times"
    );
}

#[test]
fn dimtree_steady_state_sweeps_do_not_allocate() {
    // The dimension-tree plan sizes its slab arena once, at the first
    // MTTKRP of a given rank; after that, full AO sweeps — including the
    // slab rebuilds forced by note_factor_changed — must run entirely in
    // the arena and the frozen chunk schedules.
    use aoadmm::IterationPlan;
    use rand::SeedableRng;
    let t = sptensor::gen::random_uniform(&[18, 14, 10, 8], 900, 53).unwrap();
    let rank = 6;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(54);
    let factors: Vec<DMat> = t
        .dims()
        .iter()
        .map(|&d| DMat::random(d, rank, -1.0, 1.0, &mut rng))
        .collect();
    let mut outs: Vec<DMat> = t.dims().iter().map(|&d| DMat::zeros(d, rank)).collect();
    let mut plan = IterationPlan::build(&t).unwrap();

    let sweep = |plan: &mut IterationPlan, outs: &mut [DMat]| {
        for (mode, out) in outs.iter_mut().enumerate() {
            plan.mttkrp_dense(mode, &factors, out).unwrap();
            // Pretend the mode update rewrote the factor, as the AO loop
            // does: forces the same invalidation/rebuild traffic.
            plan.note_factor_changed(mode);
        }
    };

    // Warm-up: arena sized, chunk scratch at its high-water mark.
    sweep(&mut plan, &mut outs);

    let allocs = count_allocations(|| {
        for _ in 0..3 {
            sweep(&mut plan, &mut outs);
        }
    });
    assert_eq!(
        allocs, 0,
        "3 steady-state dim-tree sweeps allocated {allocs} times"
    );
    assert!(plan.total_hits() > 0);
}

#[test]
fn alto_steady_state_sweeps_do_not_allocate() {
    // The ALTO substrate sizes its scratch arena (per-block products +
    // privatized partials for every mode) at the first MTTKRP of a given
    // rank; after that, full AO-style sweeps over every mode must run
    // entirely inside the arena, the frozen block schedule, and the
    // deterministic merge loop.
    use aoadmm::AltoTensor;
    use rand::SeedableRng;
    let t = sptensor::gen::random_uniform(&[18, 14, 10, 8], 900, 57).unwrap();
    let rank = 6;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(58);
    let factors: Vec<DMat> = t
        .dims()
        .iter()
        .map(|&d| DMat::random(d, rank, -1.0, 1.0, &mut rng))
        .collect();
    let mut outs: Vec<DMat> = t.dims().iter().map(|&d| DMat::zeros(d, rank)).collect();
    let alto = AltoTensor::build(&t).unwrap();

    // Warm-up: scratch reaches its high-water mark for this rank.
    for (mode, out) in outs.iter_mut().enumerate() {
        alto.mttkrp_into(mode, &factors, out).unwrap();
    }

    let allocs = count_allocations(|| {
        for _ in 0..3 {
            for (mode, out) in outs.iter_mut().enumerate() {
                alto.mttkrp_into(mode, &factors, out).unwrap();
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "3 steady-state ALTO sweeps allocated {allocs} times"
    );
}

#[test]
fn sharded_steady_state_rounds_do_not_allocate() {
    // The sharded engine's contract extends the workspace contract
    // across the wire: once the first rounds have sized every per-shard
    // workspace AND cycled every message buffer through the per-edge
    // recycle pools, a full lockstep round — MTTKRP, KReduce exchange,
    // blocked ADMM on owned rows, FactorRows allgather, Gram reduction,
    // objective merge — allocates nothing. Message payloads must come
    // from the pools, not the heap.
    use aoadmm::{CsfPolicy, Factorizer, SparsityConfig};
    use aoadmm_distsim::{LockstepEngine, ShardConfig};

    let t = sptensor::gen::random_uniform(&[40, 26, 30], 1200, 61).unwrap();
    let mut admm_cfg = AdmmConfig::blocked(50);
    admm_cfg.tol = 0.0;
    admm_cfg.max_inner = 6;
    // Unconstrained + sparsity reasoning off: keeps the factors dense so
    // no mid-run CSR snapshot can legitimately allocate. The dim-tree
    // MTTKRP is the arena-backed kernel with the zero-alloc guarantee
    // (asserted above); the per-mode CSF kernel allocates per-task
    // accumulators inside `for_each_init` by design.
    let cfg = Factorizer::new(5)
        .admm(admm_cfg)
        .sparsity(SparsityConfig::disabled())
        .csf_policy(CsfPolicy::DimTree)
        .max_outer(40)
        .tolerance(0.0)
        .seed(62);

    for shards in [2usize, 3] {
        let sc = ShardConfig::new(shards);
        let mut engine = LockstepEngine::build(&t, &cfg, &sc).unwrap();
        // Warm-up: round 1 sizes the workspaces and mints the message
        // buffers; rounds 2-3 let the recycle pools reach their
        // steady-state rotation.
        for _ in 0..3 {
            engine.round().unwrap();
        }
        let allocs = count_allocations(|| {
            for _ in 0..3 {
                engine.round().unwrap();
            }
        });
        assert_eq!(
            allocs, 0,
            "S={shards}: 3 steady-state sharded rounds allocated {allocs} times"
        );
    }
}

#[test]
fn warm_panel_solve_does_not_allocate() {
    let f = 8;
    let (grams, k) = problem(3 * 32 + 7, f, 47);
    let chol = Cholesky::factor_shifted(&grams[0], 1.0).unwrap();
    let mut ws = Workspace::new();
    let mut b = k.clone();
    chol.solve_mat_panel(&mut b, &mut ws).unwrap();

    b.copy_from(&k).unwrap();
    let allocs = count_allocations(|| {
        chol.solve_mat_panel(&mut b, &mut ws).unwrap();
    });
    assert_eq!(allocs, 0, "warm panel solve allocated {allocs} times");
}
