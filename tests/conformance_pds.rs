//! Conformance: the PDS inner solver against the ADMM baseline.
//!
//! Both backends minimize the same mode subproblems, so whole
//! factorizations must land on solutions of comparable quality
//! (differential legs), PDS must be bit-deterministic across thread
//! pools (the blocked sweep merges sequentially), and composite TV
//! constraints — which only PDS can express — must converge
//! monotonically and actually smooth the factors.

use admm::constraints;
use aoadmm::prelude::*;
use aoadmm::{checkpoint::Checkpoint, InnerSolverKind};
use sptensor::gen::{planted, PlantedConfig};
use testkit::tolerance::SOLVER_RTOL;

fn tensor() -> sptensor::CooTensor {
    planted(&PlantedConfig::small()).unwrap()
}

fn base(rank: usize) -> Factorizer {
    Factorizer::new(rank).max_outer(40).tolerance(0.0).seed(7)
}

/// Run a factorization under each backend and return the final errors.
fn run_pair(cfg: Factorizer) -> (f64, f64) {
    let t = tensor();
    let admm_err = cfg
        .clone()
        .inner_solver(InnerSolverKind::Admm)
        .factorize(&t)
        .unwrap()
        .trace
        .final_error;
    // First-order PDS steps close less ground per iteration than ADMM's
    // exact Cholesky solves; a deeper inner budget and a doubled outer
    // budget buy back the gap so the comparison isolates final solution
    // quality, not per-iteration progress.
    let pds_err = cfg
        .inner_solver(InnerSolverKind::Pds)
        .max_outer(80)
        .pds(PdsConfig {
            max_inner: 200,
            tol: 1e-4,
            ..PdsConfig::default()
        })
        .factorize(&t)
        .unwrap()
        .trace
        .final_error;
    (admm_err, pds_err)
}

/// Differential leg: on subproblems both backends can express, PDS must
/// reach the same quality as ADMM. PDS takes first-order steps instead of
/// exact Cholesky solves, so the comparison is on final objective, not
/// trajectories; the slack is a small multiple of the solver tolerance.
fn assert_comparable(admm_err: f64, pds_err: f64, label: &str) {
    assert!(
        pds_err <= admm_err + 50.0 * SOLVER_RTOL,
        "{label}: PDS error {pds_err} vs ADMM {admm_err}"
    );
}

#[test]
fn pds_matches_admm_unconstrained() {
    let (a, p) = run_pair(base(5));
    assert_comparable(a, p, "unconstrained");
}

#[test]
fn pds_matches_admm_nonneg() {
    let (a, p) = run_pair(base(5).constrain_all(constraints::nonneg()));
    assert_comparable(a, p, "nonneg");
}

#[test]
fn pds_matches_admm_l1() {
    let (a, p) = run_pair(base(5).constrain_all(constraints::nonneg_lasso(0.1)));
    assert_comparable(a, p, "nonneg+l1");
}

#[test]
fn pds_matches_admm_simplex() {
    let (a, p) = run_pair(
        base(4)
            .constrain_all(constraints::nonneg())
            .constrain_mode(1, constraints::simplex()),
    );
    assert_comparable(a, p, "simplex");
}

/// Hard constraints must hold exactly under PDS, not just approximately:
/// the prox step is an exact projection.
#[test]
fn pds_simplex_rows_are_feasible() {
    let t = tensor();
    let res = base(4)
        .constrain_all(constraints::nonneg())
        .constrain_mode(1, constraints::simplex())
        .inner_solver(InnerSolverKind::Pds)
        .factorize(&t)
        .unwrap();
    let fac = res.model.factor(1);
    for i in 0..fac.nrows() {
        let sum: f64 = fac.row(i).iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "row {i} sums to {sum}");
        assert!(fac.row(i).iter().all(|&x| x >= -1e-12));
    }
}

/// The blocked PDS sweep merges sequentially, so the trajectory must be
/// bit-identical regardless of the rayon pool executing it. The CI
/// matrix runs this suite under RAYON_NUM_THREADS in {1, 4}; here we
/// additionally pin pools in-process.
#[test]
fn pds_is_bit_deterministic_across_pools() {
    let t = tensor();
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            base(4)
                .constrain_all(constraints::nonneg())
                .max_outer(8)
                .inner_solver(InnerSolverKind::Pds)
                .factorize(&t)
                .unwrap()
        })
    };
    let one = run(1);
    for threads in [2, 4] {
        let multi = run(threads);
        assert_eq!(one.trace.final_error, multi.trace.final_error);
        for m in 0..3 {
            assert_eq!(
                one.model.factor(m).max_abs_diff(multi.model.factor(m)),
                0.0,
                "mode {m} differs at {threads} threads"
            );
        }
    }
}

/// Composite TV leg: only PDS can run it, and the outer error must be
/// monotone (same acceptance bar as the ADMM driver's monotonicity test).
#[test]
fn pds_tv_converges_monotonically() {
    let t = tensor();
    let res = base(4)
        .inner_solver(InnerSolverKind::Pds)
        .constrain_mode_pds(2, pds_constraints::tv(0.05))
        .max_outer(25)
        .factorize(&t)
        .unwrap();
    let errs: Vec<f64> = res.trace.iterations.iter().map(|i| i.rel_error).collect();
    assert!(errs.last().unwrap() < &errs[0], "{errs:?}");
    for w in errs.windows(2) {
        assert!(w[1] <= w[0] + 1e-6, "error increased: {w:?}");
    }
}

/// A strong TV weight must actually flatten rows of the constrained mode
/// relative to the unconstrained run.
#[test]
fn pds_tv_smooths_the_constrained_mode() {
    let t = tensor();
    let variation = |fac: &splinalg::DMat| -> f64 {
        (0..fac.nrows())
            .map(|i| {
                fac.row(i)
                    .windows(2)
                    .map(|w| (w[1] - w[0]).abs())
                    .sum::<f64>()
            })
            .sum()
    };
    let free = base(4)
        .inner_solver(InnerSolverKind::Pds)
        .max_outer(20)
        .factorize(&t)
        .unwrap();
    let tv = base(4)
        .inner_solver(InnerSolverKind::Pds)
        .constrain_mode_pds(2, pds_constraints::tv(5.0))
        .max_outer(20)
        .factorize(&t)
        .unwrap();
    let vf = variation(free.model.factor(2));
    let vt = variation(tv.model.factor(2));
    assert!(vt < 0.5 * vf, "TV variation {vt} !< half of free {vf}");
}

/// The trace must record which backend ran each mode.
#[test]
fn trace_records_inner_backend() {
    let t = tensor();
    for (kind, cfg) in [
        (InnerSolverKind::Admm, base(3).max_outer(3)),
        (
            InnerSolverKind::Pds,
            base(3).max_outer(3).inner_solver(InnerSolverKind::Pds),
        ),
    ] {
        let res = cfg.factorize(&t).unwrap();
        for it in &res.trace.iterations {
            assert!(it.modes.iter().all(|m| m.inner == Some(kind)));
        }
    }
}

/// Warm-resuming a PDS run from a checkpoint must land exactly where the
/// straight run lands — including the ragged composite duals, which
/// round-trip through the v2 per-mode checkpoint sections.
#[test]
fn pds_checkpoint_roundtrip_resumes_exactly() {
    let t = tensor();
    let cfg = || {
        base(4)
            .inner_solver(InnerSolverKind::Pds)
            .constrain_mode_pds(1, pds_constraints::tv(0.1))
    };
    let straight = cfg().max_outer(6).factorize(&t).unwrap();

    let first = cfg().max_outer(3).factorize(&t).unwrap();
    // The TV dual on mode 1 is (rank - 1) wide: the checkpoint must
    // survive ragged dual shapes.
    assert_eq!(first.duals[1].ncols(), 3);
    assert_eq!(first.duals[0].ncols(), 4);
    let mut buf = Vec::new();
    Checkpoint::from_result(&first).write(&mut buf).unwrap();
    let back = Checkpoint::read(buf.as_slice()).unwrap();
    let resumed = cfg()
        .max_outer(3)
        .factorize_warm(&t, back.model, Some(back.duals))
        .unwrap();
    for m in 0..3 {
        let diff = resumed
            .model
            .factor(m)
            .max_abs_diff(straight.model.factor(m));
        assert!(diff < 1e-12, "mode {m} diff {diff}");
    }
}

/// Configuration errors must be caught at validation, not at run time.
#[test]
fn composite_constraints_require_pds_backend() {
    let t = tensor();
    let err = base(3)
        .constrain_mode_pds(0, pds_constraints::tv(0.1))
        .factorize(&t)
        .unwrap_err()
        .to_string();
    assert!(err.contains("PDS"), "{err}");

    let err = base(3)
        .inner_solver(InnerSolverKind::Pds)
        .constrain_mode_pds(9, pds_constraints::tv(0.1))
        .factorize(&t)
        .unwrap_err()
        .to_string();
    assert!(err.contains("mode 9"), "{err}");
}

/// Warm-start dual validation is backend-aware: ADMM-shaped duals are
/// rejected when resuming under PDS with a composite constraint.
#[test]
fn warm_start_rejects_wrong_dual_shapes() {
    let t = tensor();
    let admm_run = base(4).max_outer(2).factorize(&t).unwrap();
    let err = base(4)
        .inner_solver(InnerSolverKind::Pds)
        .constrain_mode_pds(1, pds_constraints::tv(0.1))
        .max_outer(2)
        .factorize_warm(&t, admm_run.model, Some(admm_run.duals))
        .unwrap_err()
        .to_string();
    assert!(err.contains("dual"), "{err}");
}
