//! Cross-crate MTTKRP validation: CSF kernels (dense / CSR / hybrid
//! leaf factors) against the COO reference and against each other, on
//! realistic power-law tensors.

use aoadmm::mttkrp::{mttkrp_dense, mttkrp_reference, mttkrp_with_leaf};
use aoadmm::mttkrp_sparse::LeafRepr;
use aoadmm::Structure;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use splinalg::{CsrMatrix, DMat, HybridMat};
use sptensor::gen::{planted, Analog, PlantedConfig};
use sptensor::Csf;

fn factors_for(dims: &[usize], f: usize, seed: u64, sparse_mode: Option<usize>) -> Vec<DMat> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    dims.iter()
        .enumerate()
        .map(|(m, &d)| {
            let mut fac = DMat::random(d, f, 0.0, 1.0, &mut rng);
            if sparse_mode == Some(m) {
                for v in fac.as_mut_slice() {
                    if rng.gen::<f64>() < 0.85 {
                        *v = 0.0;
                    }
                }
            }
            fac
        })
        .collect()
}

#[test]
fn power_law_tensor_all_modes_all_leaf_structures() {
    let cfg = PlantedConfig {
        dims: vec![90, 40, 150],
        nnz: 12_000,
        rank: 4,
        noise: 0.1,
        factor_density: 1.0,
        zipf_exponents: vec![1.2, 0.9, 1.2],
        seed: 17,
    };
    let coo = planted(&cfg).unwrap();

    for mode in 0..3 {
        let csf = Csf::from_coo_rooted(&coo, mode).unwrap();
        let leaf_mode = *csf.mode_order().last().unwrap();
        let factors = factors_for(coo.dims(), 7, 18, Some(leaf_mode));
        let reference = mttkrp_reference(&coo, &factors, mode).unwrap();

        for s in [Structure::Dense, Structure::Csr, Structure::Hybrid] {
            let repr = LeafRepr::build(s, &factors[leaf_mode], 0.0);
            let mut out = DMat::zeros(coo.dims()[mode], 7);
            repr.mttkrp(&csf, &factors, &mut out).unwrap();
            let diff = out.max_abs_diff(&reference);
            assert!(diff < 1e-9, "mode {mode} {} diff {diff}", repr.name());
        }
    }
}

#[test]
fn analog_tensors_dense_vs_sparse_kernels() {
    // Miniature versions of two paper datasets.
    for analog in [Analog::Reddit, Analog::Patents] {
        let coo = analog.generate(0.002, 3).unwrap();
        let mode = 0;
        let csf = Csf::from_coo_rooted(&coo, mode).unwrap();
        let leaf_mode = *csf.mode_order().last().unwrap();
        let factors = factors_for(coo.dims(), 5, 4, Some(leaf_mode));

        let mut dense_out = DMat::zeros(coo.dims()[mode], 5);
        mttkrp_dense(&csf, &factors, &mut dense_out).unwrap();

        let csr = CsrMatrix::from_dense(&factors[leaf_mode], 0.0);
        let mut csr_out = DMat::zeros(coo.dims()[mode], 5);
        mttkrp_with_leaf(&csf, &factors, &csr, &mut csr_out).unwrap();

        let hyb = HybridMat::from_dense(&factors[leaf_mode], 0.0);
        let mut hyb_out = DMat::zeros(coo.dims()[mode], 5);
        mttkrp_with_leaf(&csf, &factors, &hyb, &mut hyb_out).unwrap();

        assert!(
            dense_out.max_abs_diff(&csr_out) < 1e-10,
            "{}: CSR mismatch",
            analog.name()
        );
        assert!(
            dense_out.max_abs_diff(&hyb_out) < 1e-10,
            "{}: hybrid mismatch",
            analog.name()
        );
    }
}

#[test]
fn mttkrp_linear_in_values() {
    // MTTKRP is linear in the tensor values: scaling X scales K.
    let coo = sptensor::gen::random_uniform(&[20, 15, 10], 500, 5).unwrap();
    let factors = factors_for(coo.dims(), 3, 6, None);
    let csf = Csf::from_coo_rooted(&coo, 1).unwrap();
    let mut k1 = DMat::zeros(15, 3);
    mttkrp_dense(&csf, &factors, &mut k1).unwrap();

    let mut scaled = sptensor::CooTensor::new(coo.dims().to_vec()).unwrap();
    for n in 0..coo.nnz() {
        let c = coo.coord(n);
        scaled.push(&c, 3.0 * coo.values()[n]).unwrap();
    }
    let csf3 = Csf::from_coo_rooted(&scaled, 1).unwrap();
    let mut k3 = DMat::zeros(15, 3);
    mttkrp_dense(&csf3, &factors, &mut k3).unwrap();

    k1.scale(3.0);
    assert!(k1.max_abs_diff(&k3) < 1e-10);
}

#[test]
fn mttkrp_zero_factor_gives_zero_output() {
    let coo = sptensor::gen::random_uniform(&[10, 10, 10], 200, 7).unwrap();
    let mut factors = factors_for(coo.dims(), 4, 8, None);
    factors[2].fill(0.0); // zero out one non-output factor
    let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
    let mut out = DMat::zeros(10, 4);
    mttkrp_dense(&csf, &factors, &mut out).unwrap();
    assert_eq!(out.norm_fro(), 0.0);
}

#[test]
fn five_mode_tensor_roundtrip_and_mttkrp() {
    let cfg = PlantedConfig {
        dims: vec![8, 6, 7, 5, 9],
        nnz: 1_500,
        rank: 3,
        noise: 0.05,
        factor_density: 1.0,
        zipf_exponents: vec![0.5; 5],
        seed: 23,
    };
    let coo = planted(&cfg).unwrap();
    let factors = factors_for(coo.dims(), 4, 24, None);
    for mode in 0..5 {
        let csf = Csf::from_coo_rooted(&coo, mode).unwrap();
        // CSF must preserve the nonzeros exactly.
        assert_eq!(csf.nnz(), coo.nnz());
        let mut out = DMat::zeros(coo.dims()[mode], 4);
        mttkrp_dense(&csf, &factors, &mut out).unwrap();
        let reference = mttkrp_reference(&coo, &factors, mode).unwrap();
        assert!(
            out.max_abs_diff(&reference) < 1e-9,
            "mode {mode} diff {}",
            out.max_abs_diff(&reference)
        );
    }
}
