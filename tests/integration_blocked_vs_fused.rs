//! The paper's central claim (Section IV-B / Figure 6): blockwise ADMM
//! converges at least as well per outer iteration as the fused baseline,
//! while doing less total row work on skewed data.

use admm::{constraints, AdmmConfig};
use aoadmm::Factorizer;
use sptensor::gen::{planted, PlantedConfig};

/// A skewed tensor: strong Zipf so a few rows are "high-signal".
fn skewed_tensor() -> sptensor::CooTensor {
    let cfg = PlantedConfig {
        dims: vec![300, 60, 200],
        nnz: 25_000,
        rank: 5,
        noise: 0.1,
        factor_density: 1.0,
        zipf_exponents: vec![1.3, 0.7, 1.3],
        seed: 77,
    };
    planted(&cfg).unwrap()
}

fn run(t: &sptensor::CooTensor, cfg: AdmmConfig, outers: usize) -> aoadmm::FactorizeResult {
    Factorizer::new(10)
        .constrain_all(constraints::nonneg())
        .admm(cfg)
        .max_outer(outers)
        .tolerance(0.0) // run exactly `outers` iterations
        .seed(13)
        .factorize(t)
        .unwrap()
}

#[test]
fn blocked_converges_at_least_as_well_per_iteration() {
    let t = skewed_tensor();
    let blocked = run(&t, AdmmConfig::blocked(50), 15);
    let fused = run(&t, AdmmConfig::fused(), 15);
    // Figure 6 right column: blocked curves sit at or below base curves
    // (within a small band on the datasets where base wins slightly).
    assert!(
        blocked.trace.final_error <= fused.trace.final_error + 0.01,
        "blocked {} vs fused {}",
        blocked.trace.final_error,
        fused.trace.final_error
    );
}

#[test]
fn blocked_does_less_row_work_on_skewed_data() {
    let t = skewed_tensor();
    let blocked = run(&t, AdmmConfig::blocked(50), 10);
    let fused = run(&t, AdmmConfig::fused(), 10);
    let work = |r: &aoadmm::FactorizeResult| -> u64 {
        r.trace
            .iterations
            .iter()
            .flat_map(|i| i.modes.iter())
            .map(|m| m.admm_row_iterations)
            .sum()
    };
    let wb = work(&blocked);
    let wf = work(&fused);
    // Blocking stops easy blocks early; it must not do *more* row work
    // than the globally synchronized baseline.
    assert!(wb <= wf, "blocked row work {wb} > fused {wf}");
}

#[test]
fn per_block_iteration_counts_are_nonuniform_on_skewed_data() {
    // Indirect check of "high-signal rows need more iterations": with
    // blocking, max iterations per update exceeds the average implied by
    // row work, i.e. some blocks worked harder than others.
    let t = skewed_tensor();
    let blocked = run(&t, AdmmConfig::blocked(50), 6);
    let mut saw_nonuniform = false;
    for it in &blocked.trace.iterations {
        for m in &it.modes {
            let rows = t.dims()[m.mode] as u64;
            let avg = m.admm_row_iterations as f64 / rows as f64;
            if (m.admm_iterations as f64) > avg * 1.5 {
                saw_nonuniform = true;
            }
        }
    }
    assert!(
        saw_nonuniform,
        "every block used the same iteration count; expected skew"
    );
}

#[test]
fn tiny_blocks_and_whole_matrix_block_both_work() {
    let t = skewed_tensor();
    for bs in [1usize, 7, 512, usize::MAX / 2] {
        let res = run(&t, AdmmConfig::blocked(bs), 3);
        assert!(
            res.trace.final_error.is_finite(),
            "block size {bs} broke the solver"
        );
    }
}

#[test]
fn strategies_agree_on_final_model_with_tight_inner_tol() {
    let t = skewed_tensor();
    let mut b = AdmmConfig::blocked(50);
    b.tol = 1e-12;
    b.max_inner = 300;
    let mut f = AdmmConfig::fused();
    f.tol = 1e-12;
    f.max_inner = 300;
    let rb = run(&t, b, 5);
    let rf = run(&t, f, 5);
    // With the inner problems solved near-exactly, both strategies follow
    // the same AO trajectory.
    assert!(
        (rb.trace.final_error - rf.trace.final_error).abs() < 1e-4,
        "{} vs {}",
        rb.trace.final_error,
        rf.trace.final_error
    );
}
