//! Hot-swap integration: publishing into a live daemon while wire
//! clients are mid-flight.
//!
//! The contracts under test:
//!
//! 1. **No torn reads.** Each published model is "epoch-constant":
//!    every factor entry is a per-epoch constant, so every possible
//!    point score under epoch `e` has a single known bit pattern. A
//!    response whose value bits disagree with the bit pattern of the
//!    epoch it claims would prove a cross-shard mix of generations —
//!    the sharded registry swaps one `Arc<ShardSet>`, so this must
//!    never happen.
//! 2. **No dropped in-flight requests.** Clients pipeline fixed-size
//!    windows through the swaps; every request gets exactly one
//!    response.
//! 3. **Monotone epochs per connection.** Snapshots are pinned at
//!    decode time on the single I/O thread and responses are released
//!    in request order, so the epoch sequence a connection observes
//!    never decreases.
//! 4. **Swap-trace logging.** Every publish fires the trace hook with
//!    the new epoch and the model dims.
//! 5. **Stream-sink republish.** A `ShardedRegistry` is a
//!    [`ModelSink`], so the streaming factorizer can publish straight
//!    into a live daemon; wire clients observe the new epoch.

use aoadmm::KruskalModel;
use aoadmm_serve::{ModelRegistry, ServeEngine};
use aoadmm_served::{Daemon, DaemonConfig, Tier, WireClient};
use aoadmm_stream::ModelSink;
use splinalg::DMat;
use sptensor::Idx;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const DIMS: [usize; 3] = [48, 7, 5];
const RANK: usize = 4;
const EPOCHS: u64 = 6;

/// A model whose every factor entry is the same per-epoch constant, so
/// every point score under that epoch has one known bit pattern.
fn epoch_model(epoch: u64) -> KruskalModel {
    let c = 1.0 + epoch as f64 * 0.5;
    let factors = DIMS
        .iter()
        .map(|&d| {
            let mut m = DMat::zeros(d, RANK);
            m.fill(c);
            m
        })
        .collect();
    KruskalModel::new(factors)
}

/// Map epoch -> the exact value bits the serving kernels produce for
/// that epoch's model, computed through the unsharded in-process
/// engine (the conformance baseline).
fn expected_bits() -> HashMap<u64, u64> {
    (1..=EPOCHS)
        .map(|e| {
            let registry = Arc::new(ModelRegistry::new());
            registry.publish(epoch_model(e));
            let engine = ServeEngine::new(registry);
            (e, engine.predict_direct(&[0, 0, 0]).unwrap().to_bits())
        })
        .collect()
}

fn coord_for(i: u64) -> Vec<Idx> {
    DIMS.iter()
        .enumerate()
        .map(|(m, &d)| ((i.wrapping_mul(0x9e3779b9).wrapping_add(m as u64 * 31)) % d as u64) as Idx)
        .collect()
}

#[test]
fn hot_swap_under_concurrent_wire_clients() {
    let daemon = Daemon::bind(DaemonConfig {
        nshards: 3,
        workers: 2,
        batch_deadline: Duration::from_micros(200),
        ..DaemonConfig::default()
    })
    .unwrap();

    // Satellite: every swap must be logged with epoch and dims.
    type SwapLog = Arc<Mutex<Vec<(u64, Vec<usize>)>>>;
    let traced: SwapLog = Arc::new(Mutex::new(Vec::new()));
    {
        let traced = Arc::clone(&traced);
        daemon
            .registry()
            .set_swap_trace(Arc::new(move |epoch, dims| {
                traced.lock().unwrap().push((epoch, dims.to_vec()));
            }));
    }
    daemon.registry().publish(epoch_model(1)).unwrap();

    let bits = expected_bits();
    let addr = daemon.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    const CLIENTS: usize = 3;
    const WINDOW: usize = 64;
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let bits = bits.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr).unwrap();
                let coords: Vec<Vec<Idx>> = (0..WINDOW as u64)
                    .map(|i| coord_for(i + c as u64))
                    .collect();
                let mut last_epoch = 0u64;
                let mut answered = 0usize;
                let mut windows = 0usize;
                while !stop.load(Ordering::Relaxed) || windows == 0 {
                    // Pipelined predicts: every request must come back.
                    let results = client.predict_pipelined(&coords).unwrap();
                    assert_eq!(results.len(), WINDOW, "dropped in-flight predict");
                    for res in results {
                        let (epoch, value) = res.unwrap();
                        assert!(
                            epoch >= last_epoch,
                            "epoch went backwards on one connection: {epoch} < {last_epoch}"
                        );
                        last_epoch = epoch;
                        let want = *bits.get(&epoch).expect("epoch out of published range");
                        assert_eq!(
                            value.to_bits(),
                            want,
                            "torn read: value does not match its epoch {epoch}"
                        );
                        answered += 1;
                    }
                    // Interleave top-K: epochs stay monotone across
                    // request kinds on the same connection.
                    let (epoch, hits) = client.topk(Tier::Exact, 0, &[0, 3, 2], 5).unwrap();
                    assert!(epoch >= last_epoch);
                    last_epoch = epoch;
                    assert_eq!(hits.len(), 5);
                    windows += 1;
                }
                (answered, windows, last_epoch)
            })
        })
        .collect();

    // Swap through the remaining epochs while the clients hammer away.
    for e in 2..=EPOCHS {
        std::thread::sleep(Duration::from_millis(20));
        let got = daemon.registry().publish(epoch_model(e)).unwrap();
        assert_eq!(got, e);
    }
    std::thread::sleep(Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);

    for handle in clients {
        let (answered, windows, last_epoch) = handle.join().unwrap();
        assert_eq!(
            answered,
            windows * WINDOW,
            "request/response count mismatch"
        );
        assert!((1..=EPOCHS).contains(&last_epoch));
    }

    // Every publish (including the first) fired the trace hook, in
    // epoch order, with the model dims.
    let traced = traced.lock().unwrap();
    assert_eq!(traced.len(), EPOCHS as usize);
    for (i, (epoch, dims)) in traced.iter().enumerate() {
        assert_eq!(*epoch, i as u64 + 1);
        assert_eq!(dims, &DIMS.to_vec());
    }

    let mut client = WireClient::connect(addr).unwrap();
    client.shutdown().unwrap();
    daemon.wait();
}

#[test]
fn stream_sink_republish_reaches_wire_clients() {
    let daemon = Daemon::bind(DaemonConfig {
        nshards: 2,
        ..DaemonConfig::default()
    })
    .unwrap();
    daemon.registry().publish(epoch_model(1)).unwrap();

    let mut client = WireClient::connect(daemon.local_addr()).unwrap();
    let (epoch, _) = client.predict(&[0, 0, 0]).unwrap();
    assert_eq!(epoch, 1);

    // The streaming factorizer publishes through the ModelSink trait;
    // a sharded registry is a sink, so a live daemon can be its target.
    let sink: &dyn ModelSink = daemon.registry().as_ref();
    sink.publish(epoch_model(2));

    let bits = expected_bits();
    let (epoch, value) = client.predict(&[0, 0, 0]).unwrap();
    assert_eq!(epoch, 2);
    assert_eq!(value.to_bits(), bits[&2]);

    client.shutdown().unwrap();
    daemon.wait();
}

#[test]
fn swap_mid_pipeline_window_answers_every_request() {
    let daemon = Daemon::bind(DaemonConfig {
        nshards: 3,
        ..DaemonConfig::default()
    })
    .unwrap();
    daemon.registry().publish(epoch_model(1)).unwrap();
    let bits = expected_bits();

    let mut client = WireClient::connect(daemon.local_addr()).unwrap();
    let coords: Vec<Vec<Idx>> = (0..400u64).map(coord_for).collect();

    // Race a swap against one large pipelined window. Wherever the
    // boundary lands, every response must be whole: right count, in
    // order, each value matching its own epoch.
    let publisher = {
        let registry = Arc::clone(daemon.registry());
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(300));
            registry.publish(epoch_model(2)).unwrap()
        })
    };
    let results = client.predict_pipelined(&coords).unwrap();
    assert_eq!(publisher.join().unwrap(), 2);
    assert_eq!(results.len(), coords.len());
    let mut last_epoch = 0u64;
    for res in results {
        let (epoch, value) = res.unwrap();
        assert!(epoch >= last_epoch);
        last_epoch = epoch;
        assert_eq!(value.to_bits(), bits[&epoch]);
    }

    client.shutdown().unwrap();
    daemon.wait();
}
