//! Differential conformance: the ADMM solver layer against closed-form
//! and full-enumeration oracles.
//!
//! * Unconstrained `admm_update` must converge to the row-wise normal
//!   equations solution `G h = k` (computed by the testkit Cholesky
//!   oracle) under both the blocked and fused strategies.
//! * Non-negative updates are checked against the KKT conditions of the
//!   constrained quadratic program rather than another iterative solver.
//! * Blocked and fused must agree with each other at tight inner
//!   tolerance from identical warm starts.
//! * The driver's SPLATT-trick `final_error` is pinned to a
//!   full-enumeration residual over every cell of a small cube.
//! * Every built-in proximity operator is pinned to its scalar oracle.

use admm::{admm_update, constraints, AdmmConfig, AdmmStrategy, Prox};
use splinalg::DMat;
use testkit::tolerance::SOLVER_RTOL;
use testkit::{assert_mats_close, gen, oracle, TestRng};

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

/// A well-conditioned Gram matrix and matching MTTKRP-like right-hand
/// side, plus warm-start primal/dual iterates.
fn admm_problem(rows: usize, rank: usize, seed: u64) -> (DMat, DMat, DMat, DMat) {
    let b = gen::factors(&[rows + rank], rank, 0.2, 1.2, seed)
        .pop()
        .unwrap();
    let mut g = oracle::gram(&b);
    g.add_diag(0.05); // keep the conditioning mild so fixed points are sharp
    let mut rng = TestRng::new(seed ^ 0xA5A5);
    let mut k = DMat::zeros(rows, rank);
    for v in k.as_mut_slice() {
        *v = rng.uniform(-2.0, 2.0);
    }
    let h = DMat::zeros(rows, rank);
    let u = DMat::zeros(rows, rank);
    (g, k, h, u)
}

/// Tight inner settings so the iterate is numerically at the fixed point.
fn tight(strategy: AdmmStrategy, block_size: usize) -> AdmmConfig {
    AdmmConfig {
        tol: 1e-14,
        max_inner: 5_000,
        block_size,
        strategy,
        ..AdmmConfig::default()
    }
}

#[test]
fn unconstrained_update_converges_to_normal_equations_solution() {
    let (g, k, h0, u0) = admm_problem(23, 4, 701);
    let want = oracle::least_squares_rows(&g, &k).expect("G is SPD");
    let prox = constraints::unconstrained();
    for strategy in [AdmmStrategy::Blocked, AdmmStrategy::Fused] {
        for threads in [1usize, 4] {
            let (mut h, mut u) = (h0.clone(), u0.clone());
            let cfg = tight(strategy, 7);
            let stats = pool(threads)
                .install(|| admm_update(&g, &k, &mut h, &mut u, &*prox, &cfg))
                .unwrap();
            assert!(
                stats.iterations > 0,
                "{strategy:?} at {threads} threads did no work"
            );
            assert_mats_close(
                &format!(
                    "unconstrained admm ({strategy:?}, {threads} threads) vs least-squares oracle"
                ),
                &h,
                &want,
                SOLVER_RTOL,
                1e-7,
            );
        }
    }
}

#[test]
fn nonneg_update_satisfies_kkt_conditions() {
    let (g, k, h0, u0) = admm_problem(30, 5, 711);
    let prox = constraints::nonneg();
    for strategy in [AdmmStrategy::Blocked, AdmmStrategy::Fused] {
        let (mut h, mut u) = (h0.clone(), u0.clone());
        admm_update(&g, &k, &mut h, &mut u, &*prox, &tight(strategy, 6)).unwrap();

        // Feasibility is guaranteed by construction (H is a prox output).
        assert!(
            h.as_slice().iter().all(|&x| x >= 0.0),
            "{strategy:?}: H not feasible"
        );

        // KKT for min_H 0.5 tr(H G H^T) - tr(H K^T) s.t. H >= 0, with
        // gradient HG - K: active entries need gradient ~ 0, entries at
        // the bound need gradient >= 0 (no descent into the orthant).
        let grad = h.matmul(&g).unwrap();
        let scale = k.as_slice().iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        let eps = 1e-3 * scale.max(1.0);
        for (i, (&hv, (&gv, &kv))) in h
            .as_slice()
            .iter()
            .zip(grad.as_slice().iter().zip(k.as_slice()))
            .enumerate()
        {
            let g_i = gv - kv;
            if hv > 1e-7 {
                assert!(
                    g_i.abs() <= eps,
                    "{strategy:?}: interior entry {i} (h={hv:.3e}) has gradient {g_i:.3e} > {eps:.1e}"
                );
            } else {
                assert!(
                    g_i >= -eps,
                    "{strategy:?}: boundary entry {i} has descent direction, gradient {g_i:.3e}"
                );
            }
        }
    }
}

#[test]
fn blocked_and_fused_agree_from_identical_warm_starts() {
    for (pi, prox) in [constraints::nonneg(), constraints::lasso(0.2)]
        .into_iter()
        .enumerate()
    {
        let (g, k, h0, u0) = admm_problem(41, 4, 721 + pi as u64);
        let (mut hb, mut ub) = (h0.clone(), u0.clone());
        admm_update(
            &g,
            &k,
            &mut hb,
            &mut ub,
            &*prox,
            &tight(AdmmStrategy::Blocked, 9),
        )
        .unwrap();
        let (mut hf, mut uf) = (h0.clone(), u0.clone());
        admm_update(
            &g,
            &k,
            &mut hf,
            &mut uf,
            &*prox,
            &tight(AdmmStrategy::Fused, 9),
        )
        .unwrap();
        assert_mats_close(
            &format!("blocked vs fused fixed point, prox {}", prox.name()),
            &hb,
            &hf,
            SOLVER_RTOL,
            1e-7,
        );
    }
}

/// Simplex-constrained updates: exact feasibility, first-order
/// stationarity against the bisection projection oracle, and bitwise
/// pool-invariance of the blocked sweep across 1/2/4-thread pools.
#[test]
fn simplex_update_is_feasible_stationary_and_pool_invariant() {
    let (g, k, h0, u0) = admm_problem(27, 5, 761);
    let prox = constraints::simplex();
    let cfg = tight(AdmmStrategy::Blocked, 8);

    let run = |threads: usize| {
        let (mut h, mut u) = (h0.clone(), u0.clone());
        pool(threads)
            .install(|| admm_update(&g, &k, &mut h, &mut u, &*prox, &cfg))
            .unwrap();
        (h, u)
    };

    let (h1, _) = run(1);
    // Exact feasibility: every row is a prox output, so it lies on the
    // simplex to rounding, and the operator agrees it is feasible.
    for i in 0..h1.nrows() {
        let row = h1.row(i);
        let sum: f64 = row.iter().sum();
        assert!((sum - 1.0).abs() <= 1e-9, "row {i} sums to {sum}");
        assert!(row.iter().all(|&x| x >= 0.0), "row {i} negative");
        assert!(prox.is_feasible_row(row, 1e-9), "row {i} not feasible");
    }

    // Stationarity: at the constrained minimum, a projected-gradient
    // step must be a fixed point — project(x - s * (xG - k)) == x.
    let grad = h1.matmul(&g).unwrap();
    let step = 1e-3;
    for i in 0..h1.nrows() {
        let x = h1.row(i);
        let moved: Vec<f64> = x
            .iter()
            .zip(grad.row(i).iter().zip(k.row(i)))
            .map(|(&xv, (&gv, &kv))| xv - step * (gv - kv))
            .collect();
        let back = oracle::prox::simplex_project(&moved);
        for (j, (&a, &b)) in x.iter().zip(&back).enumerate() {
            assert!(
                (a - b).abs() <= 1e-5,
                "row {i} entry {j} not stationary: {a} vs {b}"
            );
        }
    }

    // Bit-determinism across pools: the blocked sweep merges
    // sequentially, so trajectories cannot depend on the executor.
    for threads in [2usize, 4] {
        let (ht, ut) = run(threads);
        assert_eq!(
            h1.max_abs_diff(&ht),
            0.0,
            "primal differs at {threads} threads"
        );
        let (_, u1) = run(1);
        assert_eq!(
            u1.max_abs_diff(&ut),
            0.0,
            "dual differs at {threads} threads"
        );
    }
}

#[test]
fn fast_final_error_matches_full_enumeration_oracle() {
    // The driver computes the relative error with the SPLATT inner
    // product trick; the oracle walks every cell of the dense cube.
    let coo = gen::tensor(&[8, 7, 6], 150, 731);
    for constrained in [false, true] {
        let mut f = aoadmm::Factorizer::new(3).max_outer(8).seed(5);
        if constrained {
            f = f.constrain_all(constraints::nonneg());
        }
        let result = f.factorize(&coo).unwrap();
        let want = oracle::relative_error(&coo, result.model.factors());
        assert!(
            (result.trace.final_error - want).abs() < 1e-8,
            "constrained={constrained}: fast error {} vs enumerated {}",
            result.trace.final_error,
            want
        );
    }
}

#[test]
fn every_builtin_prox_matches_its_scalar_oracle() {
    for (name, prox) in gen::constraint_suite() {
        for (ri, rho) in [0.5f64, 1.0, 3.7].into_iter().enumerate() {
            let mut rng = TestRng::new(741 + ri as u64);
            for trial in 0..25 {
                let row: Vec<f64> = (0..6).map(|_| rng.uniform(-2.0, 2.0)).collect();
                let mut got = row.clone();
                prox.apply_row(&mut got, rho);
                let want: Vec<f64> = match name {
                    "unconstrained" => row.clone(),
                    "nonneg" => row.iter().map(|&x| oracle::prox::nonneg(x)).collect(),
                    "lasso(0.3)" => row
                        .iter()
                        .map(|&x| oracle::prox::soft_threshold(x, 0.3 / rho))
                        .collect(),
                    "nonneg_lasso(0.3)" => row
                        .iter()
                        .map(|&x| oracle::prox::nonneg_soft_threshold(x, 0.3 / rho))
                        .collect(),
                    "ridge(0.5)" => row
                        .iter()
                        .map(|&x| oracle::prox::ridge(x, 0.5, rho))
                        .collect(),
                    "boxed(-0.5,0.5)" => row
                        .iter()
                        .map(|&x| oracle::prox::clamp(x, -0.5, 0.5))
                        .collect(),
                    "simplex" => oracle::prox::simplex_project(&row),
                    "max_row_norm(1.0)" => oracle::prox::max_row_norm(&row, 1.0),
                    other => panic!("constraint_suite entry {other} has no oracle mapping"),
                };
                // Scalar operators must agree to rounding; the simplex
                // oracle uses bisection instead of the solver's sort
                // algorithm, so allow its convergence slack.
                let tol = if name == "simplex" { 1e-9 } else { 1e-12 };
                for (j, (&g, &w)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        (g - w).abs() <= tol,
                        "{name} rho={rho} trial={trial} entry {j}: got {g:.17e}, oracle {w:.17e}"
                    );
                }
            }
        }
    }
}

#[test]
fn hard_constraint_projections_are_idempotent() {
    // Projections onto convex sets are idempotent; applying the prox to
    // its own output must be a no-op (up to rounding for the simplex).
    let hard: Vec<(&str, std::sync::Arc<dyn Prox>)> = vec![
        ("nonneg", constraints::nonneg()),
        ("boxed", constraints::boxed(-0.5, 0.5)),
        ("simplex", constraints::simplex()),
        ("max_row_norm", constraints::max_row_norm(1.0)),
    ];
    let mut rng = TestRng::new(751);
    for (name, prox) in hard {
        for _ in 0..10 {
            let mut once: Vec<f64> = (0..5).map(|_| rng.uniform(-2.0, 2.0)).collect();
            prox.apply_row(&mut once, 1.0);
            let mut twice = once.clone();
            prox.apply_row(&mut twice, 1.0);
            for (a, b) in once.iter().zip(&twice) {
                assert!((a - b).abs() <= 1e-12, "{name} projection not idempotent");
            }
            assert!(
                prox.is_feasible_row(&once, 1e-9),
                "{name} output infeasible"
            );
        }
    }
}
