//! Wire conformance: everything served over TCP must match the
//! in-process engines exactly.
//!
//! Layers:
//!
//! 1. Point scores over the wire are **bit-identical** to an unsharded
//!    in-process [`ServeEngine`] — across shard counts, so sharded
//!    routing is also conformance-tested against the single-registry
//!    baseline here.
//! 2. Exact top-K over the wire equals the in-process exact path (ids,
//!    order, and score bits), sharded fan-out included.
//! 3. The approximate tier's wire answers carry exact-path score bits
//!    for every id they return.
//! 4. Admission control rejects with a typed `OverLimit` carrying a
//!    back-off hint, and the stats RPC accounts for every request.
//! 5. Typed errors: empty registry, bad coordinates, bad free mode.
//! 6. Pipelined requests come back in order with echoed ids.

use aoadmm::KruskalModel;
use aoadmm_serve::{ModelRegistry, ServeEngine, TopKQuery};
use aoadmm_served::{ClientError, Daemon, DaemonConfig, Endpoint, ErrorCode, Tier, WireClient};
use sptensor::Idx;
use std::sync::Arc;
use std::time::Duration;
use testkit::gen;

const DIMS: [usize; 3] = [60, 9, 8];
const RANK: usize = 6;

fn fixture() -> KruskalModel {
    KruskalModel::new(gen::factors(&DIMS, RANK, -1.0, 1.0, 77))
}

fn daemon_with(nshards: usize, model: &KruskalModel) -> Daemon {
    let daemon = Daemon::bind(DaemonConfig {
        nshards,
        workers: 2,
        batch_deadline: Duration::from_micros(200),
        ..DaemonConfig::default()
    })
    .expect("bind loopback");
    daemon.registry().publish(model.clone()).unwrap();
    daemon
}

fn inproc(model: &KruskalModel) -> ServeEngine {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(model.clone());
    ServeEngine::new(registry)
}

fn coord_for(i: u64) -> Vec<Idx> {
    DIMS.iter()
        .enumerate()
        .map(|(m, &d)| ((i.wrapping_mul(2654435761).wrapping_add(m as u64 * 97)) % d as u64) as Idx)
        .collect()
}

#[test]
fn wire_point_scores_match_inprocess_bitwise_across_shard_counts() {
    let model = fixture();
    let engine = inproc(&model);
    for nshards in [1, 3] {
        let daemon = daemon_with(nshards, &model);
        let mut client = WireClient::connect(daemon.local_addr()).unwrap();
        for i in 0..120u64 {
            let coord = coord_for(i);
            let (epoch, got) = client.predict(&coord).unwrap();
            assert_eq!(epoch, 1);
            let want = engine.predict_direct(&coord).unwrap();
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "nshards={nshards} coord={coord:?}"
            );
        }
        client.shutdown().unwrap();
        daemon.wait();
    }
}

#[test]
fn wire_exact_topk_matches_inprocess_across_shard_counts() {
    let model = fixture();
    let engine = inproc(&model);
    for nshards in [1, 4] {
        let daemon = daemon_with(nshards, &model);
        let mut client = WireClient::connect(daemon.local_addr()).unwrap();
        // Free mode 0 is the split mode (fan-out); 1 routes by anchor.
        for free_mode in [0usize, 1] {
            for i in 0..25u64 {
                let anchor = coord_for(i);
                let k = 1 + (i as usize % 12);
                let (_, got) = client.topk(Tier::Exact, free_mode, &anchor, k).unwrap();
                let want = engine
                    .topk(&TopKQuery {
                        free_mode,
                        anchor: anchor.clone(),
                        k,
                    })
                    .unwrap()
                    .hits;
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0, "nshards={nshards} free={free_mode} i={i}");
                    assert_eq!(g.1.to_bits(), w.1.to_bits());
                }
            }
        }
        client.shutdown().unwrap();
        daemon.wait();
    }
}

#[test]
fn wire_approx_hits_carry_exact_score_bits() {
    let model = fixture();
    let engine = inproc(&model);
    let daemon = daemon_with(2, &model);
    let mut client = WireClient::connect(daemon.local_addr()).unwrap();
    for free_mode in [0usize, 2] {
        for i in 0..20u64 {
            let anchor = coord_for(i);
            let (_, got) = client.topk(Tier::Approx, free_mode, &anchor, 8).unwrap();
            // The exact full ranking is the score oracle.
            let full = engine
                .topk(&TopKQuery {
                    free_mode,
                    anchor: anchor.clone(),
                    k: DIMS[free_mode],
                })
                .unwrap()
                .hits;
            assert!(!got.is_empty());
            for &(id, score) in &got {
                let want = full.iter().find(|&&(fid, _)| fid == id).unwrap().1;
                assert_eq!(score.to_bits(), want.to_bits(), "free={free_mode} id={id}");
            }
            // Best first under the same total order.
            assert!(got
                .windows(2)
                .all(|w| w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)));
        }
    }
    client.shutdown().unwrap();
    daemon.wait();
}

#[test]
fn admission_control_rejects_with_typed_overlimit() {
    let model = fixture();
    let daemon = Daemon::bind(DaemonConfig {
        rate: 2.0,
        burst: 3.0,
        ..DaemonConfig::default()
    })
    .unwrap();
    daemon.registry().publish(model).unwrap();
    let mut client = WireClient::connect(daemon.local_addr()).unwrap();
    // The burst admits 3; the 4th scoring request in the same instant
    // must bounce with a back-off hint.
    let mut rejected = None;
    for _ in 0..4 {
        match client.predict(&[0, 0, 0]) {
            Ok(_) => {}
            Err(ClientError::Remote {
                code: ErrorCode::OverLimit,
                retry_after_ms,
                ..
            }) => {
                rejected = Some(retry_after_ms);
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    let retry = rejected.expect("4th request over a burst of 3 must be rejected");
    assert!(retry > 0, "over-limit must carry a back-off hint");
    // Control endpoints stay open while throttled.
    client.ping().unwrap();
    let report = client.stats().unwrap();
    let predict = report.endpoint(Endpoint::Predict).unwrap();
    assert_eq!(predict.requests, 4);
    assert_eq!(predict.errors, 1);
    client.shutdown().unwrap();
    daemon.wait();
}

#[test]
fn stats_rpc_accounts_for_every_endpoint() {
    let model = fixture();
    let daemon = daemon_with(1, &model);
    let mut client = WireClient::connect(daemon.local_addr()).unwrap();
    for i in 0..7u64 {
        client.predict(&coord_for(i)).unwrap();
    }
    for i in 0..5u64 {
        client.topk(Tier::Exact, 0, &coord_for(i), 5).unwrap();
    }
    for i in 0..3u64 {
        client.topk(Tier::Approx, 0, &coord_for(i), 5).unwrap();
    }
    client.ping().unwrap();
    let report = client.stats().unwrap();
    for (endpoint, want) in [
        (Endpoint::Predict, 7),
        (Endpoint::TopKExact, 5),
        (Endpoint::TopKApprox, 3),
        (Endpoint::Ping, 1),
    ] {
        let ep = report.endpoint(endpoint).unwrap();
        assert_eq!(ep.requests, want, "{}", endpoint.name());
        assert_eq!(ep.errors, 0);
        // Every request landed in some latency bucket.
        assert_eq!(ep.hist.iter().sum::<u64>(), want);
        assert!(ep.quantile_ns(0.5) > 0);
        assert!(ep.quantile_ns(0.99) >= ep.quantile_ns(0.5));
    }
    client.shutdown().unwrap();
    daemon.wait();
}

#[test]
fn typed_errors_for_empty_registry_and_bad_queries() {
    let daemon = Daemon::bind(DaemonConfig::default()).unwrap();
    let mut client = WireClient::connect(daemon.local_addr()).unwrap();
    // Empty registry.
    match client.predict(&[0, 0, 0]) {
        Err(ClientError::Remote {
            code: ErrorCode::Empty,
            ..
        }) => {}
        other => panic!("want Empty, got {other:?}"),
    }
    // Publish, then send out-of-range queries.
    daemon.registry().publish(fixture()).unwrap();
    match client.predict(&[999, 0, 0]) {
        Err(ClientError::Remote {
            code: ErrorCode::Invalid,
            msg,
            ..
        }) => assert!(msg.contains("out of range")),
        other => panic!("want Invalid, got {other:?}"),
    }
    match client.topk(Tier::Exact, 7, &[0, 0, 0], 3) {
        Err(ClientError::Remote {
            code: ErrorCode::Invalid,
            ..
        }) => {}
        other => panic!("want Invalid, got {other:?}"),
    }
    // The connection survives typed rejections.
    assert!(client.predict(&[0, 0, 0]).is_ok());
    client.shutdown().unwrap();
    daemon.wait();
}

#[test]
fn pipelined_requests_return_in_order() {
    let model = fixture();
    let engine = inproc(&model);
    let daemon = daemon_with(2, &model);
    let mut client = WireClient::connect(daemon.local_addr()).unwrap();
    let coords: Vec<Vec<Idx>> = (0..200u64).map(coord_for).collect();
    let results = client.predict_pipelined(&coords).unwrap();
    assert_eq!(results.len(), coords.len());
    for (coord, res) in coords.iter().zip(results) {
        let (_, got) = res.unwrap();
        let want = engine.predict_direct(coord).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
    }
    // A pipelined window mixing valid and invalid items gets per-item
    // answers, still in order.
    let mut mixed: Vec<Vec<Idx>> = (0..10u64).map(coord_for).collect();
    mixed[4] = vec![999, 0, 0];
    let results = client.predict_pipelined(&mixed).unwrap();
    for (i, res) in results.iter().enumerate() {
        if i == 4 {
            assert!(matches!(
                res,
                Err(ClientError::Remote {
                    code: ErrorCode::Invalid,
                    ..
                })
            ));
        } else {
            assert!(res.is_ok(), "item {i}");
        }
    }
    client.shutdown().unwrap();
    daemon.wait();
}
