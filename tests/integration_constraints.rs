//! Constraint semantics through the full factorization: each supported
//! proximity operator must leave its fingerprint on the final factors.

use admm::constraints;
use aoadmm::Factorizer;
use sptensor::gen::{planted, PlantedConfig};

fn tensor() -> sptensor::CooTensor {
    let cfg = PlantedConfig {
        dims: vec![50, 40, 45],
        nnz: 6_000,
        rank: 4,
        noise: 0.05,
        factor_density: 0.9,
        zipf_exponents: vec![0.8, 0.8, 0.8],
        seed: 31,
    };
    planted(&cfg).unwrap()
}

#[test]
fn nonneg_all_modes() {
    let res = Factorizer::new(5)
        .constrain_all(constraints::nonneg())
        .max_outer(12)
        .factorize(&tensor())
        .unwrap();
    for m in 0..3 {
        assert!(
            res.model.factor(m).as_slice().iter().all(|&x| x >= 0.0),
            "mode {m}"
        );
    }
}

#[test]
fn box_constraint_bounds_entries() {
    let res = Factorizer::new(5)
        .constrain_all(constraints::boxed(0.0, 0.8))
        .max_outer(12)
        .factorize(&tensor())
        .unwrap();
    for m in 0..3 {
        for &x in res.model.factor(m).as_slice() {
            assert!((0.0..=0.8).contains(&x), "mode {m}: {x}");
        }
    }
}

#[test]
fn simplex_rows_are_distributions() {
    let res = Factorizer::new(5)
        .constrain_all(constraints::nonneg())
        .constrain_mode(2, constraints::simplex())
        .max_outer(12)
        .factorize(&tensor())
        .unwrap();
    let fac = res.model.factor(2);
    for i in 0..fac.nrows() {
        let row = fac.row(i);
        let sum: f64 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "row {i} sums to {sum}");
        assert!(row.iter().all(|&x| x >= -1e-9));
    }
}

#[test]
fn lasso_induces_exact_zeros() {
    let res = Factorizer::new(8)
        .constrain_all(constraints::nonneg_lasso(0.6))
        .max_outer(20)
        .factorize(&tensor())
        .unwrap();
    let total: usize = (0..3)
        .map(|m| res.model.factor(m).count_nonzeros(0.0))
        .sum();
    let cells: usize = (0..3)
        .map(|m| res.model.factor(m).nrows() * res.model.factor(m).ncols())
        .sum();
    assert!(
        total < cells,
        "lasso produced no zeros at all ({total}/{cells})"
    );
}

#[test]
fn stronger_lasso_is_sparser() {
    let run = |lambda: f64| -> f64 {
        let res = Factorizer::new(8)
            .constrain_all(constraints::nonneg_lasso(lambda))
            .max_outer(20)
            .seed(1)
            .factorize(&tensor())
            .unwrap();
        res.model.factor_densities(0.0).iter().sum::<f64>() / 3.0
    };
    let mild = run(0.1);
    let strong = run(1.5);
    assert!(
        strong <= mild + 1e-9,
        "stronger lasso denser: {strong} vs {mild}"
    );
}

#[test]
fn ridge_shrinks_factor_norms() {
    let free = Factorizer::new(5)
        .max_outer(15)
        .seed(2)
        .factorize(&tensor())
        .unwrap();
    let ridged = Factorizer::new(5)
        .constrain_all(constraints::ridge(5.0))
        .max_outer(15)
        .seed(2)
        .factorize(&tensor())
        .unwrap();
    let norm = |r: &aoadmm::FactorizeResult| -> f64 {
        (0..3).map(|m| r.model.factor(m).norm_fro_sq()).sum()
    };
    assert!(
        norm(&ridged) < norm(&free),
        "ridge did not shrink: {} vs {}",
        norm(&ridged),
        norm(&free)
    );
}

#[test]
fn max_row_norm_bounds_rows() {
    let res = Factorizer::new(5)
        .constrain_all(constraints::max_row_norm(1.0))
        .max_outer(12)
        .factorize(&tensor())
        .unwrap();
    for m in 0..3 {
        let fac = res.model.factor(m);
        for i in 0..fac.nrows() {
            let n = fac.row(i).iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(n <= 1.0 + 1e-9, "mode {m} row {i} norm {n}");
        }
    }
}

#[test]
fn constraint_reduces_attainable_fit() {
    // The feasible set shrinks under constraints, so the constrained
    // optimum cannot beat the unconstrained one (up to solver noise).
    let t = tensor();
    let free = Factorizer::new(6)
        .max_outer(25)
        .seed(3)
        .factorize(&t)
        .unwrap();
    let constrained = Factorizer::new(6)
        .constrain_all(constraints::boxed(0.0, 0.3))
        .max_outer(25)
        .seed(3)
        .factorize(&t)
        .unwrap();
    assert!(constrained.trace.final_error >= free.trace.final_error - 0.02);
}
