//! Allocation counter for the serving hot path.
//!
//! The serving engine inherits the workspace discipline of the solver
//! hot path (see `tests/alloc_hot_path.rs`): slot cells, scoring
//! scratch, the leader's drain buffer and the top-K entry heap all live
//! in free lists or grow-once buffers. Once a query shape has been seen
//! once, repeating it — point reconstruction through the micro-batcher
//! and top-K through the pruned scanner — performs **zero** heap
//! allocation. This test installs a counting global allocator (its own
//! test binary for that reason), warms the engine with one round of
//! queries, then repeats them with counting enabled.

use aoadmm::KruskalModel;
use aoadmm_serve::{ModelRegistry, ServeEngine, TopKQuery};
use splinalg::DMat;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static TRACKING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `body` with allocation counting enabled and return how many heap
/// allocations it performed.
fn count_allocations(body: impl FnOnce()) -> usize {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    body();
    TRACKING.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn engine() -> ServeEngine {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(KruskalModel::new(vec![
        DMat::random(90, 8, -1.0, 1.0, &mut rng),
        DMat::random(40, 8, -1.0, 1.0, &mut rng),
        DMat::random(25, 8, -1.0, 1.0, &mut rng),
    ]));
    ServeEngine::new(registry)
}

#[test]
fn warm_predict_does_not_allocate() {
    let engine = engine();
    let coords: [[u32; 3]; 4] = [[0, 0, 0], [89, 39, 24], [17, 22, 3], [55, 1, 19]];

    // Warm-up: slot cell, scratch arena and queue reach capacity.
    for c in &coords {
        engine.predict(c).unwrap();
    }

    let allocs = count_allocations(|| {
        for _ in 0..16 {
            for c in &coords {
                engine.predict(c).unwrap();
            }
        }
    });
    assert_eq!(allocs, 0, "warm predict allocated {allocs} times");
}

#[test]
fn warm_bulk_predict_does_not_allocate() {
    let engine = engine();
    let coords: Vec<Vec<u32>> = (0..70u32).map(|i| vec![i % 90, i % 40, i % 25]).collect();
    let mut values = Vec::new();
    engine.predict_many_into(&coords, &mut values).unwrap();

    let allocs = count_allocations(|| {
        for _ in 0..16 {
            engine.predict_many_into(&coords, &mut values).unwrap();
        }
    });
    assert_eq!(allocs, 0, "warm bulk predict allocated {allocs} times");
}

#[test]
fn warm_topk_does_not_allocate() {
    let engine = engine();
    let queries = [
        TopKQuery {
            free_mode: 0,
            anchor: vec![0, 12, 7],
            k: 10,
        },
        TopKQuery {
            free_mode: 1,
            anchor: vec![31, 0, 20],
            k: 5,
        },
        TopKQuery {
            free_mode: 2,
            anchor: vec![60, 9, 0],
            k: 25,
        },
    ];
    let mut hits = Vec::new();

    for q in &queries {
        engine.topk_into(q, &mut hits).unwrap();
    }

    let allocs = count_allocations(|| {
        for _ in 0..16 {
            for q in &queries {
                engine.topk_into(q, &mut hits).unwrap();
            }
        }
    });
    assert_eq!(allocs, 0, "warm top-K allocated {allocs} times");
}

#[test]
fn warm_approx_topk_does_not_allocate() {
    // The approximate tier adds three scratch buffers (quantized
    // weights, quantized scores, survivor set) to the same pooled
    // scratch; once a query shape has been seen, repeats are
    // allocation-free like the exact path.
    let engine = engine();
    let queries = [
        TopKQuery {
            free_mode: 0,
            anchor: vec![0, 12, 7],
            k: 10,
        },
        TopKQuery {
            free_mode: 1,
            anchor: vec![31, 0, 20],
            k: 5,
        },
    ];
    let mut hits = Vec::new();

    for q in &queries {
        engine.topk_approx_into(q, &mut hits).unwrap();
    }

    let allocs = count_allocations(|| {
        for _ in 0..16 {
            for q in &queries {
                engine.topk_approx_into(q, &mut hits).unwrap();
            }
        }
    });
    assert_eq!(allocs, 0, "warm approx top-K allocated {allocs} times");
}

#[test]
fn warm_mixed_load_does_not_allocate() {
    // Interleaved point + top-K traffic through one engine: the two
    // paths share the scratch pool; alternating between them must not
    // thrash arenas back to the allocator.
    let engine = engine();
    let q = TopKQuery {
        free_mode: 0,
        anchor: vec![0, 18, 11],
        k: 15,
    };
    let mut hits = Vec::new();
    engine.predict(&[4, 4, 4]).unwrap();
    engine.topk_into(&q, &mut hits).unwrap();

    let allocs = count_allocations(|| {
        for _ in 0..32 {
            engine.predict(&[4, 4, 4]).unwrap();
            engine.topk_into(&q, &mut hits).unwrap();
        }
    });
    assert_eq!(allocs, 0, "warm mixed load allocated {allocs} times");
}
