//! Differential conformance: the leaf-factor representations (DENSE /
//! CSR / CSR-H) against the `testkit` oracle.
//!
//! The snapshots are built with `tol = 0.0`, so they drop only exact
//! zeros and the oracle evaluated on the original dense factors is the
//! ground truth for every representation. Sweeps leaf densities from
//! nearly-empty to fully dense, every root mode, both forced plan
//! strategies, and 1/4-thread pools, and checks the three
//! representations against the oracle *and* each other.

use aoadmm::mttkrp_sparse::{mttkrp_csr, mttkrp_hybrid, LeafRepr};
use aoadmm::sparsity::{
    choose_structure, prepare_leaf, SparsityConfig, Structure, StructureChoice,
};
use aoadmm::{MttkrpPlan, PlanOptions, PlanStrategy};
use splinalg::{CsrMatrix, DMat, HybridMat};
use sptensor::Csf;
use testkit::tolerance::{KERNEL_ATOL, KERNEL_RTOL};
use testkit::{assert_mats_close, gen, oracle};

const DENSITIES: [f64; 4] = [0.02, 0.1, 0.5, 1.0];
const STRUCTURES: [Structure; 3] = [Structure::Dense, Structure::Csr, Structure::Hybrid];

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

/// Factors where every mode is drawn at `density` (the leaf mode is the
/// one whose representation is under test, but sparse factors everywhere
/// exercise the dense gather paths too).
fn sparse_factors(dims: &[usize], rank: usize, density: f64, seed: u64) -> Vec<DMat> {
    dims.iter()
        .enumerate()
        .map(|(m, &d)| gen::sparse_factor(d, rank, density, seed + m as u64))
        .collect()
}

#[test]
fn every_leaf_representation_matches_oracle_across_densities() {
    let coo = gen::skewed_tensor(&[16, 13, 11], 1_000, 2.0, 601);
    for (di, &density) in DENSITIES.iter().enumerate() {
        let factors = sparse_factors(coo.dims(), 4, density, 610 + di as u64);
        for root in 0..coo.nmodes() {
            let csf = Csf::from_coo_rooted(&coo, root).unwrap();
            let leaf_mode = *csf.mode_order().last().unwrap();
            let want = oracle::mttkrp(&coo, &factors, root);
            for structure in STRUCTURES {
                let leaf = LeafRepr::build(structure, &factors[leaf_mode], 0.0);
                for strategy in [PlanStrategy::RootParallel, PlanStrategy::FiberPrivatized] {
                    for threads in [1usize, 4] {
                        let plan = MttkrpPlan::with_options(
                            &csf,
                            PlanOptions {
                                threads: Some(threads),
                                force_strategy: Some(strategy),
                            },
                        );
                        let mut out = DMat::zeros(coo.dims()[root], 4);
                        pool(threads)
                            .install(|| leaf.mttkrp_planned(&csf, &plan, &factors, &mut out))
                            .unwrap();
                        assert_mats_close(
                            &format!(
                                "{} leaf, density {density}, root {root}, {}, {threads} threads",
                                leaf.name(),
                                strategy.name()
                            ),
                            &out,
                            &want,
                            KERNEL_RTOL,
                            KERNEL_ATOL,
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn representations_agree_with_each_other_on_identical_plans() {
    // Same plan, same pool: DENSE / CSR / CSR-H read the same leaf
    // values through different layouts, so agreement must be tight.
    let coo = gen::tensor(&[20, 9, 15], 800, 621);
    let factors = sparse_factors(coo.dims(), 5, 0.3, 622);
    let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
    let leaf_mode = *csf.mode_order().last().unwrap();
    let plan = MttkrpPlan::build(&csf);
    let mut results = Vec::new();
    for structure in STRUCTURES {
        let leaf = LeafRepr::build(structure, &factors[leaf_mode], 0.0);
        let mut out = DMat::zeros(coo.dims()[0], 5);
        leaf.mttkrp_planned(&csf, &plan, &factors, &mut out)
            .unwrap();
        results.push((leaf.name(), out));
    }
    for (name, out) in &results[1..] {
        assert_mats_close(
            &format!("{name} vs DENSE on identical plan"),
            out,
            &results[0].1,
            KERNEL_RTOL,
            KERNEL_ATOL,
        );
    }
}

#[test]
fn free_function_wrappers_match_oracle() {
    let coo = gen::tensor(&[12, 10, 8], 500, 631);
    let factors = sparse_factors(coo.dims(), 3, 0.15, 632);
    let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
    let leaf_mode = *csf.mode_order().last().unwrap();
    let want = oracle::mttkrp(&coo, &factors, 0);

    let csr = CsrMatrix::from_dense(&factors[leaf_mode], 0.0);
    let mut out_csr = DMat::zeros(coo.dims()[0], 3);
    mttkrp_csr(&csf, &factors, &csr, &mut out_csr).unwrap();
    assert_mats_close("mttkrp_csr", &out_csr, &want, KERNEL_RTOL, KERNEL_ATOL);

    let hyb = HybridMat::from_dense(&factors[leaf_mode], 0.0);
    let mut out_hyb = DMat::zeros(coo.dims()[0], 3);
    mttkrp_hybrid(&csf, &factors, &hyb, &mut out_hyb).unwrap();
    assert_mats_close("mttkrp_hybrid", &out_hyb, &want, KERNEL_RTOL, KERNEL_ATOL);
}

#[test]
fn snapshot_density_reflects_the_factor() {
    // The stored density of a tol=0 snapshot equals the factor's true
    // nonzero density for CSR; Dense always reports 1.0 and Hybrid
    // (whole dense columns plus CSR spill) lies in between.
    let f = gen::sparse_factor(40, 6, 0.2, 641);
    let true_density = f.density(0.0);
    let csr = LeafRepr::build(Structure::Csr, &f, 0.0);
    assert!((csr.stored_density() - true_density).abs() < 1e-12);
    let dense = LeafRepr::build(Structure::Dense, &f, 0.0);
    assert_eq!(dense.stored_density(), 1.0);
    let hybrid = LeafRepr::build(Structure::Hybrid, &f, 0.0);
    assert!(hybrid.stored_density() >= true_density - 1e-12);
    assert!(hybrid.stored_density() <= 1.0);
}

#[test]
fn structure_selection_respects_the_density_threshold() {
    let cfg = SparsityConfig {
        enabled: true,
        choice: StructureChoice::Auto,
        density_threshold: 0.2,
        zero_tol: 0.0,
    };
    // Above the threshold the snapshot must stay dense regardless of
    // what the chooser would say.
    let dense_factor = gen::factors(&[50], 6, 0.1, 1.0, 651).pop().unwrap();
    let (_, decision) = prepare_leaf(&dense_factor, true, &cfg);
    assert_eq!(decision.structure, Structure::Dense);
    assert!(decision.density >= cfg.density_threshold);
    // Below it, the Auto chooser picks a compressed structure.
    let sparse = gen::sparse_factor(50, 6, 0.05, 652);
    let (_, decision) = prepare_leaf(&sparse, true, &cfg);
    assert_ne!(decision.structure, Structure::Dense);
    assert_eq!(
        decision.structure,
        choose_structure(50, 6, decision.density)
    );
    // A constraint that cannot zero entries short-circuits to Dense.
    let (_, decision) = prepare_leaf(&sparse, false, &cfg);
    assert_eq!(decision.structure, Structure::Dense);
}
