//! Oracle-locked conformance of the sharded execution engine.
//!
//! The single-shard shared-memory driver is the oracle. The suite pins
//! the engine to it across a zoo of shapes (3-, 4- and 5-mode, uniform
//! and skewed), shard counts {1, 2, 3, 4}, per-shard pool sizes
//! {0 (inline), 1, 2, 4}, and degenerate ragged partitions with more
//! shards than split-mode slices.
//!
//! All runs use the *deterministic-reduction discipline*: zero inner
//! ADMM tolerance and a fixed inner iteration count, which turns the
//! blocked solver into a pure per-row function. Under that discipline
//! the trajectory is shard-count invariant (block boundaries cannot
//! change early stopping), so the suite demands per-iteration
//! trajectory equality, not just a final-answer match:
//!
//! * `S = 1` must be **bit-exact** against the oracle — same error
//!   bits, same factor bits, same dual bits.
//! * threaded SPMD must be **bit-exact** against the single-threaded
//!   lockstep schedule (same merges in the same frozen order).
//! * pool size must not change a single bit (per-shard rayon MTTKRP
//!   partitions output rows, never reductions).
//! * `S > 1` must track the oracle's per-iteration relative errors to
//!   1e-8 and its factors to 1e-6 (the residual difference is the
//!   shard-ordered MTTKRP summation order).

use admm::{constraints, AdmmConfig};
use aoadmm::Factorizer;
use aoadmm_distsim::{shard_factorize, LockstepEngine, ShardConfig};
use sptensor::CooTensor;
use testkit::gen;

/// Fixed-inner-work configuration: the conformance discipline.
fn fixed_cfg(rank: usize, max_outer: usize, seed: u64) -> Factorizer {
    let mut a = AdmmConfig::blocked(50);
    a.tol = 0.0;
    a.max_inner = 8;
    Factorizer::new(rank)
        .constrain_all(constraints::nonneg())
        .admm(a)
        .max_outer(max_outer)
        .tolerance(0.0)
        .seed(seed)
}

/// Shape zoo: mode counts 3-5, uniform and skewed occupancy.
fn zoo() -> Vec<(&'static str, CooTensor)> {
    vec![
        ("uniform-3mode", gen::tensor(&[40, 26, 30], 1500, 11)),
        (
            "skewed-3mode",
            gen::skewed_tensor(&[48, 20, 24], 1800, 1.1, 12),
        ),
        ("uniform-4mode", gen::tensor(&[30, 18, 22, 14], 1600, 13)),
        (
            "skewed-4mode",
            gen::skewed_tensor(&[36, 16, 12, 18], 1400, 0.9, 14),
        ),
        (
            "uniform-5mode",
            gen::tensor(&[24, 12, 10, 14, 16], 1500, 15),
        ),
    ]
}

#[test]
fn trajectory_locks_to_oracle_across_zoo_and_shard_counts() {
    for (name, t) in zoo() {
        let cfg = fixed_cfg(4, 4, 21);
        let oracle = cfg.factorize(&t).expect(name);
        for s in [1usize, 2, 3, 4] {
            let res = shard_factorize(&t, &cfg, &ShardConfig::new(s))
                .unwrap_or_else(|e| panic!("{name} S={s}: {e}"));
            assert_eq!(
                res.trace.iterations.len(),
                oracle.trace.iterations.len(),
                "{name} S={s}: iteration count"
            );
            for (it, (a, b)) in oracle
                .trace
                .iterations
                .iter()
                .zip(&res.trace.iterations)
                .enumerate()
            {
                assert!(
                    (a.rel_error - b.rel_error).abs() < 1e-8,
                    "{name} S={s} iter {it}: {} vs {}",
                    a.rel_error,
                    b.rel_error
                );
            }
            for m in 0..t.nmodes() {
                let d = oracle.model.factor(m).max_abs_diff(res.model.factor(m));
                assert!(d < 1e-6, "{name} S={s} mode {m}: factor diff {d}");
            }
            if s == 1 {
                // Degenerate sharding must reproduce the oracle bit for bit.
                assert_eq!(
                    oracle.trace.final_error.to_bits(),
                    res.trace.final_error.to_bits(),
                    "{name} S=1: error bits"
                );
                for m in 0..t.nmodes() {
                    assert_eq!(
                        oracle.model.factor(m).max_abs_diff(res.model.factor(m)),
                        0.0,
                        "{name} S=1 mode {m}: factor bits"
                    );
                    assert_eq!(
                        oracle.duals[m].max_abs_diff(&res.duals[m]),
                        0.0,
                        "{name} S=1 mode {m}: dual bits"
                    );
                }
            }
        }
    }
}

#[test]
fn pool_size_does_not_change_a_bit() {
    let t = gen::skewed_tensor(&[36, 16, 12, 18], 1400, 0.9, 14);
    let cfg = fixed_cfg(4, 4, 22);
    let baseline = shard_factorize(&t, &cfg, &ShardConfig::new(3)).unwrap();
    for threads in [1usize, 2, 4] {
        let sc = ShardConfig::new(3).threads_per_shard(threads);
        let res = shard_factorize(&t, &cfg, &sc).unwrap();
        assert_eq!(
            baseline.trace.final_error.to_bits(),
            res.trace.final_error.to_bits(),
            "threads={threads}: error bits"
        );
        for m in 0..t.nmodes() {
            assert_eq!(
                baseline.model.factor(m).max_abs_diff(res.model.factor(m)),
                0.0,
                "threads={threads} mode {m}: factor bits"
            );
        }
    }
}

#[test]
fn threaded_spmd_matches_lockstep_bitwise() {
    let t = gen::tensor(&[30, 18, 22, 14], 1600, 13);
    let cfg = fixed_cfg(4, 4, 23);
    for s in [2usize, 4] {
        let sc = ShardConfig::new(s);
        let mut lock = LockstepEngine::build(&t, &cfg, &sc).unwrap();
        lock.run_to_convergence().unwrap();
        let lock_res = lock.finish();
        let thr = shard_factorize(&t, &cfg, &sc).unwrap();
        assert_eq!(
            lock_res.trace.final_error.to_bits(),
            thr.trace.final_error.to_bits(),
            "S={s}: error bits"
        );
        for m in 0..t.nmodes() {
            assert_eq!(
                lock_res.model.factor(m).max_abs_diff(thr.model.factor(m)),
                0.0,
                "S={s} mode {m}: factor bits"
            );
            assert_eq!(
                lock_res.duals[m].max_abs_diff(&thr.duals[m]),
                0.0,
                "S={s} mode {m}: dual bits"
            );
        }
    }
}

#[test]
fn ragged_partition_with_empty_shards_still_conforms() {
    // 6 split-mode slices, heavily skewed, spread over up to 8 shards:
    // the greedy nnz split leaves trailing shards with empty ranges and
    // no nonzeros at all. Those shards must still participate in every
    // merge without perturbing the result.
    let t = gen::skewed_tensor(&[6, 5, 4], 300, 1.3, 31);
    let cfg = fixed_cfg(3, 4, 32);
    let oracle = cfg.factorize(&t).unwrap();
    for s in [4usize, 6, 8] {
        let res = shard_factorize(&t, &cfg, &ShardConfig::new(s))
            .unwrap_or_else(|e| panic!("S={s}: {e}"));
        assert!(
            res.partition.split_ranges().iter().any(|r| r.is_empty()),
            "S={s}: expected at least one empty shard range"
        );
        assert!(
            (oracle.trace.final_error - res.trace.final_error).abs() < 1e-8,
            "S={s}: {} vs {}",
            oracle.trace.final_error,
            res.trace.final_error
        );
        for m in 0..t.nmodes() {
            let d = oracle.model.factor(m).max_abs_diff(res.model.factor(m));
            assert!(d < 1e-6, "S={s} mode {m}: factor diff {d}");
        }
    }
}

#[test]
fn sharded_runs_are_invariant_across_shard_counts() {
    // Stronger than oracle tracking: any two shard counts agree with
    // each other at the same tolerance, including with pools enabled.
    let t = gen::tensor(&[40, 26, 30], 1500, 11);
    let cfg = fixed_cfg(4, 5, 24);
    let reference = shard_factorize(&t, &cfg, &ShardConfig::new(2)).unwrap();
    for (s, threads) in [(3usize, 0usize), (4, 2)] {
        let sc = ShardConfig::new(s).threads_per_shard(threads);
        let res = shard_factorize(&t, &cfg, &sc).unwrap();
        assert!(
            (reference.trace.final_error - res.trace.final_error).abs() < 1e-8,
            "S={s} threads={threads}"
        );
        for m in 0..t.nmodes() {
            let d = reference.model.factor(m).max_abs_diff(res.model.factor(m));
            assert!(d < 1e-6, "S={s} threads={threads} mode {m}: diff {d}");
        }
    }
}

#[test]
fn alto_policy_sharded_runs_track_the_alto_oracle() {
    // Each shard compiles its local tensor under the ALTO substrate;
    // the trajectory must track the unsharded ALTO run, and degenerate
    // S=1 sharding must reproduce it bit for bit (the shard's ALTO
    // encoding is built from the identical local tensor). Pools don't
    // move a bit either: ALTO's block schedule and merge order are
    // frozen at build.
    let zoo = [
        (
            "skewed-3mode",
            gen::skewed_tensor(&[48, 20, 24], 1800, 1.1, 12),
        ),
        ("uniform-4mode", gen::tensor(&[30, 18, 22, 14], 1600, 13)),
    ];
    for (name, t) in zoo {
        let cfg = fixed_cfg(4, 4, 25).csf_policy(aoadmm::CsfPolicy::Alto);
        let oracle = cfg.factorize(&t).expect(name);
        for s in [1usize, 3] {
            let res = shard_factorize(&t, &cfg, &ShardConfig::new(s))
                .unwrap_or_else(|e| panic!("{name} S={s}: {e}"));
            assert!(
                (oracle.trace.final_error - res.trace.final_error).abs() < 1e-8,
                "{name} S={s}: {} vs {}",
                oracle.trace.final_error,
                res.trace.final_error
            );
            for m in 0..t.nmodes() {
                let d = oracle.model.factor(m).max_abs_diff(res.model.factor(m));
                assert!(d < 1e-6, "{name} S={s} mode {m}: factor diff {d}");
            }
            if s == 1 {
                assert_eq!(
                    oracle.trace.final_error.to_bits(),
                    res.trace.final_error.to_bits(),
                    "{name} S=1: error bits"
                );
            } else {
                let pooled =
                    shard_factorize(&t, &cfg, &ShardConfig::new(s).threads_per_shard(2)).unwrap();
                for m in 0..t.nmodes() {
                    assert_eq!(
                        res.model.factor(m).max_abs_diff(pooled.model.factor(m)),
                        0.0,
                        "{name} S={s} mode {m}: pooled factor bits"
                    );
                }
            }
        }
    }
}
