//! Streaming conformance: the incrementally maintained CSF+delta state
//! against cold recomputation on the fully merged tensor.
//!
//! Four layers, each differential against an oracle that shares no code
//! with the streaming path:
//!
//! 1. The [`DeltaBuffer`] state after every batch against
//!    `testkit::gen::apply_delta_batches` (dense-map semantics).
//! 2. [`DeltaView`] MTTKRP against the COO oracle on the merged tensor,
//!    under rayon pools of 1 and 4 threads.
//! 3. A bounded factorization driven from the CSF+delta view against the
//!    identical run on a freshly compiled merged tensor, from the same
//!    initial factors — trajectories must agree within solver tolerance.
//! 4. The full [`StreamingFactorizer`] loop: warm-started refits must
//!    reach the fit of cold refactorization after every batch in
//!    strictly fewer total outer iterations, and background rebuilds
//!    must land in the same state as synchronous ones.

use aoadmm::{
    factorize, factorize_prepared, init_factors, Factorizer, KruskalModel, PreparedTensor,
    TensorSource,
};
use aoadmm_stream::{
    DeltaBuffer, DeltaView, MergePolicy, RebuildMode, StreamOp, StreamingConfig,
    StreamingFactorizer,
};
use splinalg::DMat;
use sptensor::{CooTensor, Idx};
use std::collections::BTreeMap;
use testkit::gen::{self, DeltaBatch, DeltaOp, StreamSpec};
use testkit::oracle;
use testkit::tolerance::{assert_mats_close, KERNEL_ATOL, KERNEL_RTOL, SOLVER_RTOL};

const THREAD_SWEEP: [usize; 2] = [1, 4];

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

/// Translate the testkit generator's op vocabulary into the stream
/// crate's (kept separate so the oracle shares no types with the code
/// under test).
fn to_stream_ops(batch: &DeltaBatch) -> Vec<StreamOp> {
    batch
        .ops
        .iter()
        .map(|op| match op {
            DeltaOp::Add { coord, val } => StreamOp::Add {
                coord: coord.clone(),
                val: *val,
            },
            DeltaOp::Set { coord, val } => StreamOp::Set {
                coord: coord.clone(),
                val: *val,
            },
            DeltaOp::Grow { mode, new_len } => StreamOp::Grow {
                mode: *mode,
                new_len: *new_len,
            },
        })
        .collect()
}

/// Entry-wise comparison of two COO tensors over the union of their
/// coordinates (absent = 0.0). Exact coordinate equality is not required
/// because `Set` is encoded as an additive correction: the reassembled
/// value differs from the oracle's by one rounding step.
fn assert_coo_close(got: &CooTensor, want: &CooTensor, rtol: f64, atol: f64, label: &str) {
    assert_eq!(got.dims(), want.dims(), "{label}: dims");
    let mut union: BTreeMap<Vec<Idx>, (f64, f64)> = BTreeMap::new();
    got.for_each_nonzero(|c, v| {
        union.entry(c.to_vec()).or_insert((0.0, 0.0)).0 = v;
    });
    want.for_each_nonzero(|c, v| {
        union.entry(c.to_vec()).or_insert((0.0, 0.0)).1 = v;
    });
    for (coord, (g, w)) in union {
        let tol = atol + rtol * w.abs().max(g.abs());
        assert!(
            (g - w).abs() <= tol,
            "{label}: value mismatch at {coord:?}: got {g}, want {w}"
        );
    }
}

#[test]
fn buffer_tracks_the_oracle_batch_by_batch() {
    for seed in [1u64, 2, 3] {
        let (base, batches) = gen::delta_stream(&StreamSpec::small(seed));
        let mut buf = DeltaBuffer::new(base.clone()).expect("non-empty base");
        for k in 0..batches.len() {
            buf.ingest(&to_stream_ops(&batches[k])).expect("valid ops");
            let want = gen::apply_delta_batches(&base, &batches[..=k]);
            assert_eq!(buf.nnz(), want.nnz(), "seed {seed} batch {k}: entry count");
            assert_coo_close(
                &buf.merged_coo(),
                &want,
                1e-12,
                1e-13,
                &format!("seed {seed} batch {k}"),
            );
            let direct = want.norm_sq();
            assert!(
                (buf.norm_sq() - direct).abs() <= 1e-9 * direct.max(1.0),
                "seed {seed} batch {k}: incremental norm drifted"
            );
        }
    }
}

#[test]
fn delta_view_mttkrp_matches_the_merged_oracle() {
    let (base, batches) = gen::delta_stream(&StreamSpec::small(7));
    let mut buf = DeltaBuffer::new(base).expect("non-empty base");
    for batch in &batches {
        buf.ingest(&to_stream_ops(batch)).expect("valid ops");
    }
    let merged = buf.merged_coo();
    let rank = 5;
    let factors = gen::factors(buf.dims(), rank, -1.0, 1.0, 40);
    let cfg = Factorizer::new(rank);

    // Both base substrates must serve the view: the per-mode CSF set and
    // the ALTO linearized encoding (whose grow_dims either widens masks
    // in place or re-encodes).
    for policy in [aoadmm::CsfPolicy::PerMode, aoadmm::CsfPolicy::Alto] {
        let mut prepared = PreparedTensor::build(buf.base_coo(), policy).expect("compiles");
        prepared.grow_dims(buf.dims()).expect("grown dims");
        for threads in THREAD_SWEEP {
            pool(threads).install(|| {
                let view = DeltaView::new(&prepared, &buf);
                for mode in 0..buf.dims().len() {
                    let want = oracle::mttkrp(&merged, &factors, mode);
                    let mut got = DMat::zeros(buf.dims()[mode], rank);
                    view.mttkrp(mode, &factors, &cfg, &mut got).expect("mttkrp");
                    assert_mats_close(
                        &format!("view mttkrp ({policy:?}), mode {mode}, {threads} threads"),
                        &got,
                        &want,
                        KERNEL_RTOL,
                        KERNEL_ATOL,
                    );
                }
            });
        }
    }
}

#[test]
fn incremental_state_matches_cold_factorization_of_merged() {
    let (base, batches) = gen::delta_stream(&StreamSpec::small(5));
    let mut buf = DeltaBuffer::new(base).expect("non-empty base");
    for batch in &batches {
        buf.ingest(&to_stream_ops(batch)).expect("valid ops");
    }
    let mut prepared =
        PreparedTensor::build(buf.base_coo(), aoadmm::CsfPolicy::PerMode).expect("compiles");
    prepared.grow_dims(buf.dims()).expect("grown dims");
    let merged = buf.merged_coo();
    let cold_prepared =
        PreparedTensor::build(&merged, aoadmm::CsfPolicy::PerMode).expect("compiles");

    let rank = 4;
    // Negative tolerance disables early stopping: both runs execute
    // exactly max_outer iterations, so the comparison is trajectory
    // against trajectory, not stopping rule against stopping rule.
    let cfg = Factorizer::new(rank).seed(17).max_outer(12).tolerance(-1.0);
    let init = init_factors(buf.dims(), rank, cfg.seed_value(), merged.norm_sq());

    for threads in THREAD_SWEEP {
        pool(threads).install(|| {
            let view = DeltaView::new(&prepared, &buf);
            let warm = factorize_prepared(&view, &cfg, KruskalModel::new(init.clone()), None, None)
                .expect("view factorization");
            let cold = factorize_prepared(
                &cold_prepared,
                &cfg,
                KruskalModel::new(init.clone()),
                None,
                None,
            )
            .expect("cold factorization");
            assert_eq!(
                warm.trace.outer_iterations(),
                cold.trace.outer_iterations(),
                "{threads} threads: iteration counts"
            );
            for (m, (a, b)) in warm
                .model
                .factors()
                .iter()
                .zip(cold.model.factors())
                .enumerate()
            {
                assert_mats_close(
                    &format!("factor {m}, {threads} threads"),
                    a,
                    b,
                    SOLVER_RTOL,
                    1e-8,
                );
            }
            let (ew, ec) = (
                warm.trace.iterations.last().unwrap().rel_error,
                cold.trace.iterations.last().unwrap().rel_error,
            );
            assert!(
                (ew - ec).abs() <= 1e-6,
                "{threads} threads: rel_error {ew} vs {ec}"
            );
        });
    }
}

/// The acceptance headline: a [`StreamingFactorizer`] serving CSF+delta
/// with bounded warm refits reaches the fit of cold refactorization
/// after every batch, in strictly fewer total outer iterations.
#[test]
fn warm_refits_beat_cold_refactorization() {
    let (base, batches) = gen::delta_stream(&StreamSpec::small(9));
    let fz = Factorizer::new(4).seed(3).max_outer(60).tolerance(1e-5);

    let scfg = StreamingConfig::new(fz.clone())
        .refit_outer(8)
        .refit_tol(1e-5)
        .policy(MergePolicy::never());
    let mut sf = StreamingFactorizer::new(base.clone(), scfg).expect("initial fit");
    let mut warm_iters = sf.records()[0].outer_iterations;
    for batch in &batches {
        let rec = sf.push_batch(&to_stream_ops(batch)).expect("batch");
        assert!(rec.outer_iterations <= 8, "refit cap respected");
        warm_iters += rec.outer_iterations;
    }

    let mut cold_iters = 0usize;
    let mut cold_final = f64::NAN;
    for k in 0..=batches.len() {
        let t = gen::apply_delta_batches(&base, &batches[..k]);
        let res = factorize(&t, &fz).expect("cold run");
        cold_iters += res.trace.outer_iterations();
        cold_final = res.trace.iterations.last().unwrap().rel_error;
    }

    let final_tensor = gen::apply_delta_batches(&base, &batches);
    let warm_final = sf.model().relative_error(&final_tensor);
    assert!(
        warm_iters < cold_iters,
        "warm path used {warm_iters} outer iterations, cold used {cold_iters}"
    );
    assert!(
        warm_final <= cold_final + 0.02,
        "warm fit {warm_final} did not reach cold fit {cold_final}"
    );
    // The served incremental state is the merged tensor: the refit's own
    // error accounting agrees with a from-scratch evaluation against the
    // oracle-merged tensor.
    assert!(
        (sf.rel_error() - warm_final).abs() <= 1e-6,
        "served-state error {} disagrees with merged-tensor error {warm_final}",
        sf.rel_error()
    );
}

#[test]
fn merge_policies_do_not_change_the_model() {
    let (base, batches) = gen::delta_stream(&StreamSpec::small(13));
    let fz = Factorizer::new(3).seed(5).max_outer(30).tolerance(1e-6);

    let run = |policy: MergePolicy| {
        let cfg = StreamingConfig::new(fz.clone())
            .refit_outer(6)
            .policy(policy);
        let mut sf = StreamingFactorizer::new(base.clone(), cfg).expect("initial fit");
        for batch in &batches {
            sf.push_batch(&to_stream_ops(batch)).expect("batch");
        }
        sf.flush().expect("flush");
        sf
    };

    let never = run(MergePolicy::never());
    let always = run(MergePolicy::always(RebuildMode::Synchronous));
    let background = run(MergePolicy::always(RebuildMode::Background));

    // All three maintained the same logical tensor...
    let want = gen::apply_delta_batches(&base, &batches);
    for (label, sf) in [
        ("never", &never),
        ("always-sync", &always),
        ("always-background", &background),
    ] {
        assert_eq!(sf.buffer().delta_nnz(), 0, "{label}: flushed");
        assert_coo_close(&sf.current_coo(), &want, 1e-10, 1e-12, label);
        assert!(sf.rel_error().is_finite(), "{label}: fit");
    }
    // ...and merging is a serving-layer decision, not a model change:
    // every policy saw the same per-batch tensors, so the fits agree
    // within solver tolerance even though the MTTKRP groupings differ.
    assert!(
        (never.rel_error() - always.rel_error()).abs() <= 1e-3,
        "never {} vs always {}",
        never.rel_error(),
        always.rel_error()
    );
    assert!(
        (background.rel_error() - always.rel_error()).abs() <= 1e-3,
        "background {} vs always {}",
        background.rel_error(),
        always.rel_error()
    );
}

/// The streaming loop carries inner-solver state across refits as an
/// opaque payload, so the PDS backend — including a composite TV
/// constraint whose dual is (rank - 1) wide, not factor-shaped — must
/// survive batch ingestion, warm refits and mode growth unchanged.
#[test]
fn pds_state_carries_across_refits() {
    use aoadmm::prelude::pds_constraints;
    use aoadmm::InnerSolverKind;

    let spec = StreamSpec {
        growth_prob: 0.5,
        max_grow_rows: 3,
        ..StreamSpec::small(11)
    };
    let (base, batches) = gen::delta_stream(&spec);
    let fz = Factorizer::new(4)
        .seed(2)
        .max_outer(30)
        .tolerance(1e-6)
        .inner_solver(InnerSolverKind::Pds)
        .constrain_mode_pds(0, pds_constraints::tv(0.05));
    let cfg = StreamingConfig::new(fz).refit_outer(6).refit_tol(1e-6);
    let mut sf = StreamingFactorizer::new(base.clone(), cfg).expect("initial PDS fit");
    for batch in &batches {
        let rec = sf.push_batch(&to_stream_ops(batch)).expect("PDS refit");
        assert!(rec.outer_iterations <= 6, "refit cap respected");
        assert!(rec.rel_error.is_finite());
    }
    let want = gen::apply_delta_batches(&base, &batches);
    assert_eq!(sf.buffer().dims(), want.dims());
    for (m, f) in sf.factors().iter().enumerate() {
        assert_eq!(f.nrows(), want.dims()[m], "factor {m} grew with its mode");
    }
    let err = sf.model().relative_error(&want);
    assert!(err.is_finite() && err < 1.0, "PDS streaming fit {err}");
}

#[test]
fn mode_growth_flows_through_the_whole_loop() {
    // A spec that grows aggressively, so every layer sees new rows.
    let spec = StreamSpec {
        growth_prob: 1.0,
        max_grow_rows: 4,
        ..StreamSpec::small(21)
    };
    let (base, batches) = gen::delta_stream(&spec);
    let base_dims = base.dims().to_vec();
    let cfg = StreamingConfig::new(Factorizer::new(3).seed(1).max_outer(25).tolerance(1e-6))
        .refit_outer(5);
    let mut sf = StreamingFactorizer::new(base.clone(), cfg).expect("initial fit");
    for batch in &batches {
        sf.push_batch(&to_stream_ops(batch)).expect("batch");
    }
    let want = gen::apply_delta_batches(&base, &batches);
    assert_eq!(sf.buffer().dims(), want.dims());
    assert!(sf
        .buffer()
        .dims()
        .iter()
        .zip(&base_dims)
        .any(|(now, then)| now > then));
    for (m, f) in sf.factors().iter().enumerate() {
        assert_eq!(f.nrows(), want.dims()[m], "factor {m} grew with its mode");
    }
    let err = sf.model().relative_error(&want);
    assert!(
        (sf.rel_error() - err).abs() <= 1e-6,
        "grown-state error {} vs merged evaluation {err}",
        sf.rel_error()
    );
}
