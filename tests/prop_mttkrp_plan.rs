//! Property tests for plan-based MTTKRP: for every tensor shape (2-4
//! modes), nonzero distribution (uniform and Zipf-skewed), forced
//! strategy, and executing thread count, the planned kernel must match
//! the reference evaluation.

use aoadmm::mttkrp::{mttkrp_dense_planned, mttkrp_reference};
use aoadmm::{MttkrpPlan, PlanOptions, PlanStrategy};
use proptest::prelude::*;
use rand::SeedableRng;
use splinalg::DMat;
use sptensor::gen::{planted, PlantedConfig};
use sptensor::{CooTensor, Csf};
use std::sync::OnceLock;

/// A single-worker rayon pool, so every configuration also runs with all
/// parallel constructs degenerate to sequential execution.
fn one_thread_pool() -> &'static rayon::ThreadPool {
    static POOL: OnceLock<rayon::ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("single-thread pool")
    })
}

fn random_factors(dims: &[usize], f: usize, seed: u64) -> Vec<DMat> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    dims.iter()
        .map(|&d| DMat::random(d, f, -1.0, 1.0, &mut rng))
        .collect()
}

/// Run the planned kernel on `csf` under every (strategy, plan-thread,
/// pool) combination and compare against `reference`.
fn assert_plan_matches(
    coo: &CooTensor,
    csf: &Csf,
    factors: &[DMat],
    reference: &DMat,
    f: usize,
) -> Result<(), TestCaseError> {
    let root = csf.mode_order()[0];
    let strategies = [
        None,
        Some(PlanStrategy::RootParallel),
        Some(PlanStrategy::FiberPrivatized),
    ];
    for force in strategies {
        for threads in [Some(1), Some(4)] {
            let plan = MttkrpPlan::with_options(
                csf,
                PlanOptions {
                    threads,
                    force_strategy: force,
                },
            );
            // Global (multi-thread) pool.
            let mut out = DMat::zeros(coo.dims()[root], f);
            mttkrp_dense_planned(csf, &plan, factors, &mut out).unwrap();
            let diff = out.max_abs_diff(reference);
            prop_assert!(
                diff < 1e-9,
                "strategy {} (forced: {}), plan threads {:?}, global pool: diff {diff}",
                plan.strategy().name(),
                plan.stats().forced,
                threads
            );
            // Single-thread pool: same plan, degenerate execution.
            let mut out1 = DMat::zeros(coo.dims()[root], f);
            one_thread_pool()
                .install(|| mttkrp_dense_planned(csf, &plan, factors, &mut out1))
                .unwrap();
            let diff1 = out1.max_abs_diff(reference);
            prop_assert!(
                diff1 < 1e-9,
                "strategy {} (forced: {}), plan threads {:?}, 1-thread pool: diff {diff1}",
                plan.strategy().name(),
                plan.stats().forced,
                threads
            );
        }
    }
    Ok(())
}

/// Strategy: a small random COO tensor with 2-4 modes, uniform or
/// Zipf-skewed coordinates.
fn coo_strategy() -> impl Strategy<Value = CooTensor> {
    (2usize..=4)
        .prop_flat_map(|nmodes| {
            (
                proptest::collection::vec(2usize..14, nmodes),
                16usize..400,
                any::<u64>(),
                // Zipf exponent: 0 = uniform, up to strongly skewed.
                prop_oneof![Just(0.0f64), 0.5f64..2.0],
            )
        })
        .prop_map(|(dims, nnz, seed, zipf)| {
            if zipf == 0.0 {
                sptensor::gen::random_uniform(&dims, nnz, seed).expect("valid dims")
            } else {
                let nmodes = dims.len();
                planted(&PlantedConfig {
                    dims,
                    nnz,
                    rank: 3,
                    noise: 0.1,
                    factor_density: 1.0,
                    zipf_exponents: vec![zipf; nmodes],
                    seed,
                })
                .expect("valid config")
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn planned_mttkrp_matches_reference_for_all_strategies(
        coo in coo_strategy(),
        root in 0usize..4,
        f in 1usize..6,
        seed in any::<u64>(),
    ) {
        let root = root % coo.nmodes();
        let factors = random_factors(coo.dims(), f, seed);
        let csf = Csf::from_coo_rooted(&coo, root).unwrap();
        let reference = mttkrp_reference(&coo, &factors, root).unwrap();
        assert_plan_matches(&coo, &csf, &factors, &reference, f)?;
    }

    #[test]
    fn plan_reuse_is_deterministic(
        coo in coo_strategy(),
        f in 1usize..5,
        seed in any::<u64>(),
    ) {
        // Two runs with the same plan give bit-identical output: the
        // schedule is frozen in the plan and the reduction order is
        // deterministic.
        let factors = random_factors(coo.dims(), f, seed);
        let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
        let plan = MttkrpPlan::build(&csf);
        let mut a = DMat::zeros(coo.dims()[0], f);
        let mut b = DMat::zeros(coo.dims()[0], f);
        mttkrp_dense_planned(&csf, &plan, &factors, &mut a).unwrap();
        mttkrp_dense_planned(&csf, &plan, &factors, &mut b).unwrap();
        prop_assert_eq!(a.max_abs_diff(&b), 0.0);
    }
}

/// Deterministic heavy-skew case: one root slice owns nearly all
/// nonzeros, the regime the fiber-privatized path exists for.
#[test]
fn dominant_root_slice_matches_reference_under_both_strategies() {
    let t = planted(&PlantedConfig {
        dims: vec![8, 50, 60],
        nnz: 4_000,
        rank: 4,
        noise: 0.05,
        factor_density: 1.0,
        zipf_exponents: vec![2.5, 0.3, 0.3],
        seed: 77,
    })
    .unwrap();
    let factors = random_factors(t.dims(), 5, 78);
    let csf = Csf::from_coo_rooted(&t, 0).unwrap();
    let reference = mttkrp_reference(&t, &factors, 0).unwrap();

    for force in [PlanStrategy::RootParallel, PlanStrategy::FiberPrivatized] {
        let plan = MttkrpPlan::with_options(
            &csf,
            PlanOptions {
                threads: Some(8),
                force_strategy: Some(force),
            },
        );
        assert_eq!(plan.strategy(), force);
        let mut out = DMat::zeros(t.dims()[0], 5);
        mttkrp_dense_planned(&csf, &plan, &factors, &mut out).unwrap();
        assert!(
            out.max_abs_diff(&reference) < 1e-9,
            "{}: diff {}",
            force.name(),
            out.max_abs_diff(&reference)
        );
    }

    // The cost model should pick the fiber path here on its own.
    let auto = MttkrpPlan::with_options(
        &csf,
        PlanOptions {
            threads: Some(8),
            force_strategy: None,
        },
    );
    assert_eq!(auto.strategy(), PlanStrategy::FiberPrivatized);
}
