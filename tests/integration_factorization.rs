//! End-to-end factorization tests across the whole stack:
//! generator -> CSF -> MTTKRP -> ADMM -> model -> error metric.

use admm::{constraints, AdmmConfig};
use aoadmm::als::{als_factorize, AlsConfig};
use aoadmm::{Factorizer, SparsityConfig};
use sptensor::gen::{planted, Analog, PlantedConfig};

fn medium_tensor() -> sptensor::CooTensor {
    let cfg = PlantedConfig {
        dims: vec![120, 80, 100],
        nnz: 20_000,
        rank: 6,
        noise: 0.05,
        factor_density: 0.8,
        zipf_exponents: vec![1.0, 0.9, 1.0],
        seed: 99,
    };
    planted(&cfg).unwrap()
}

#[test]
fn full_pipeline_nonneg_rank16() {
    let t = medium_tensor();
    let res = Factorizer::new(16)
        .constrain_all(constraints::nonneg())
        .max_outer(30)
        .seed(1)
        .factorize(&t)
        .unwrap();

    // Error must drop substantially from the first iteration.
    let first = res.trace.iterations[0].rel_error;
    let last = res.trace.final_error;
    assert!(last < first, "no improvement: {first} -> {last}");
    assert!(last < 0.9, "final error {last}");

    // Factors feasible.
    for m in 0..3 {
        assert!(res.model.factor(m).as_slice().iter().all(|&x| x >= 0.0));
    }

    // Trace sanity: elapsed increases monotonically.
    let times: Vec<_> = res.trace.iterations.iter().map(|i| i.elapsed).collect();
    for w in times.windows(2) {
        assert!(w[1] >= w[0]);
    }
}

#[test]
fn blocked_and_fused_reach_comparable_quality() {
    let t = medium_tensor();
    let run = |cfg: AdmmConfig| {
        Factorizer::new(8)
            .constrain_all(constraints::nonneg())
            .admm(cfg)
            .max_outer(25)
            .seed(2)
            .factorize(&t)
            .unwrap()
            .trace
            .final_error
    };
    let blocked = run(AdmmConfig::blocked(50));
    let fused = run(AdmmConfig::fused());
    // The paper reports blocked converging to equal-or-better errors
    // (within a percent or two either way on Reddit/Patents).
    assert!(
        (blocked - fused).abs() < 0.05,
        "blocked {blocked} vs fused {fused}"
    );
}

#[test]
fn sparsity_enabled_and_disabled_agree() {
    // Turning on CSR/hybrid MTTKRP must not change results beyond fp
    // noise — it's the same arithmetic through a different layout.
    let t = medium_tensor();
    let run = |sp: SparsityConfig| {
        Factorizer::new(8)
            .constrain_all(constraints::nonneg_lasso(0.2))
            .sparsity(sp)
            .max_outer(20)
            .seed(3)
            .factorize(&t)
            .unwrap()
    };
    let on = run(SparsityConfig::default());
    let off = run(SparsityConfig::disabled());
    assert!(
        (on.trace.final_error - off.trace.final_error).abs() < 1e-9,
        "{} vs {}",
        on.trace.final_error,
        off.trace.final_error
    );
    for m in 0..3 {
        assert!(on.model.factor(m).max_abs_diff(off.model.factor(m)) < 1e-7);
    }
}

#[test]
fn analog_reddit_smoke_run() {
    // A miniature Reddit analog through the full pipeline.
    let t = Analog::Reddit.generate(0.01, 7).unwrap();
    let res = Factorizer::new(10)
        .constrain_all(constraints::nonneg())
        .max_outer(8)
        .seed(4)
        .factorize(&t)
        .unwrap();
    assert!(res.trace.final_error < 1.0);
    assert_eq!(res.trace.iterations.len(), 8);
}

#[test]
fn als_and_aoadmm_similar_on_easy_data() {
    let t = medium_tensor();
    let als = als_factorize(
        &t,
        &AlsConfig {
            rank: 8,
            max_outer: 20,
            seed: 5,
            ..Default::default()
        },
    )
    .unwrap();
    let ao = Factorizer::new(8)
        .constrain_all(constraints::nonneg())
        .max_outer(20)
        .seed(5)
        .factorize(&t)
        .unwrap();
    // Data is non-negative, so the constraint costs little.
    assert!((als.trace.final_error - ao.trace.final_error).abs() < 0.1);
}

#[test]
fn unconstrained_aoadmm_matches_als_quality() {
    let t = medium_tensor();
    let ao = Factorizer::new(6)
        .max_outer(25)
        .seed(6)
        .factorize(&t)
        .unwrap();
    let als = als_factorize(
        &t,
        &AlsConfig {
            rank: 6,
            max_outer: 25,
            seed: 6,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        ao.trace.final_error < als.trace.final_error + 0.05,
        "AO-ADMM {} vs ALS {}",
        ao.trace.final_error,
        als.trace.final_error
    );
}

#[test]
fn time_fractions_partition_the_run() {
    let t = medium_tensor();
    let res = Factorizer::new(8)
        .constrain_all(constraints::nonneg())
        .max_outer(10)
        .factorize(&t)
        .unwrap();
    let (m, a, o) = res.trace.time_fractions();
    assert!((m + a + o - 1.0).abs() < 1e-9);
    assert!(m > 0.0 && a > 0.0);
}
