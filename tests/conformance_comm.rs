//! Communication-volume validation: every byte the sharded engine puts
//! on the wire is (a) measured by the ledger, (b) equal to the engine's
//! own analytic prediction, and (c) equal to a first-principles formula
//! computed here from nothing but the partition and the rank — three
//! independent derivations of the same number.
//!
//! The headline claims being validated, per outer round:
//!
//! * KReduce (MTTKRP reduce-scatter): `(S-1) * |owned(m,q)| * F * 8`
//!   bytes into each owner `q`, for every non-split mode `m`.
//! * FactorRows (post-update allgather): the same volume back out.
//! * GramReduce: `(S^2 - S) * F^2 * 8` — the split-mode factor rows
//!   themselves **never travel**; only F x F partial Grams do.
//! * Objective: one scalar per ordered shard pair.
//! * `S = 1` is completely silent.

use admm::{constraints, AdmmConfig};
use aoadmm::Factorizer;
use aoadmm_distsim::{shard_factorize, Partition, Phase, ShardConfig};
use sptensor::CooTensor;
use testkit::gen;

fn fixed_cfg(rank: usize, max_outer: usize, seed: u64) -> Factorizer {
    let mut a = AdmmConfig::blocked(50);
    a.tol = 0.0;
    a.max_inner = 8;
    Factorizer::new(rank)
        .constrain_all(constraints::nonneg())
        .admm(a)
        .max_outer(max_outer)
        .tolerance(0.0)
        .seed(seed)
}

/// Tensor zoo for traffic validation: vary mode count, skew, and
/// raggedness (more shards than occupied slices).
fn zoo() -> Vec<(&'static str, CooTensor)> {
    vec![
        ("uniform-3mode", gen::tensor(&[32, 24, 20], 1200, 41)),
        (
            "skewed-3mode",
            gen::skewed_tensor(&[40, 18, 22], 1500, 1.2, 42),
        ),
        ("uniform-4mode", gen::tensor(&[26, 14, 18, 12], 1300, 43)),
        ("tiny-ragged", gen::skewed_tensor(&[6, 5, 4], 250, 1.0, 44)),
    ]
}

/// First-principles per-round byte counts, straight from the partition.
fn expected_round_bytes(part: &Partition, rank: usize) -> [u64; 4] {
    let s = part.nshards();
    let f = rank as u64;
    let mut kreduce = 0u64;
    let mut factor = 0u64;
    for m in 0..part.nmodes() {
        if m == part.split_mode() {
            continue;
        }
        for p in 0..s {
            let rows = part.owned(m, p).len() as u64;
            // Owner p receives its rows from everyone (KReduce) and then
            // broadcasts the updated rows to everyone (FactorRows).
            kreduce += (s as u64 - 1) * rows * f * 8;
            factor += (s as u64 - 1) * rows * f * 8;
        }
    }
    let pairs = (s * s - s) as u64;
    let gram = pairs * f * f * 8;
    let objective = pairs * 8;
    [kreduce, factor, gram, objective]
}

fn phase_slot(phase: Phase) -> usize {
    match phase {
        Phase::KReduce => 0,
        Phase::FactorRows => 1,
        Phase::GramReduce => 2,
        Phase::Objective => 3,
    }
}

#[test]
fn measured_traffic_matches_prediction_per_round_and_phase() {
    for (name, t) in zoo() {
        let cfg = fixed_cfg(4, 3, 45);
        for s in [1usize, 2, 3, 4] {
            let res = shard_factorize(&t, &cfg, &ShardConfig::new(s))
                .unwrap_or_else(|e| panic!("{name} S={s}: {e}"));
            assert_eq!(
                res.comm.diff_from_prediction(&res.predicted),
                None,
                "{name} S={s}: ledger deviates from prediction"
            );
            // The aggregate check above is backed by per-round equality:
            // each round (1-based) carries exactly the steady-state volume.
            for round in 1..=res.comm.rounds() {
                for phase in Phase::ALL {
                    assert_eq!(
                        res.comm.round_bytes(round, phase),
                        res.predicted.round_bytes(phase),
                        "{name} S={s} round {round} {phase:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn measured_traffic_matches_first_principles_formula() {
    let rank = 5;
    for (name, t) in zoo() {
        let cfg = fixed_cfg(rank, 3, 46);
        for s in [2usize, 3, 4] {
            let res = shard_factorize(&t, &cfg, &ShardConfig::new(s)).unwrap();
            let rounds = res.comm.rounds() as u64;
            let expect = expected_round_bytes(&res.partition, rank);
            for phase in Phase::ALL {
                assert_eq!(
                    res.comm.phase_bytes(phase),
                    rounds * expect[phase_slot(phase)],
                    "{name} S={s} {phase:?}: measured vs hand formula"
                );
            }
            // The reduce-scatter in and the allgather out are the same
            // row set, so their volumes must be identical.
            assert_eq!(
                res.comm.phase_bytes(Phase::KReduce),
                res.comm.phase_bytes(Phase::FactorRows),
                "{name} S={s}: KReduce / FactorRows symmetry"
            );
        }
    }
}

#[test]
fn split_mode_factor_rows_never_travel() {
    // If split-mode rows were exchanged like the other modes', they
    // would add (S-1) * dims[split] * F * 8 bytes per round to the
    // FactorRows phase. Verify the measured volume accounts for every
    // non-split row and nothing more.
    let t = gen::tensor(&[50, 20, 24], 1600, 47);
    let rank = 4;
    let cfg = fixed_cfg(rank, 3, 48);
    let res = shard_factorize(&t, &cfg, &ShardConfig::new(3)).unwrap();
    let part = &res.partition;
    let split = part.split_mode();
    assert_eq!(split, 0, "longest mode is the split mode");
    let non_split_rows: u64 = (0..t.nmodes())
        .filter(|&m| m != split)
        .map(|m| t.dims()[m] as u64)
        .sum();
    // Each non-split row is gathered from S-1 peers and scattered back
    // to S-1 peers per round.
    let per_round = 2 * (3 - 1) * non_split_rows * rank as u64 * 8;
    assert_eq!(
        res.comm.phase_bytes(Phase::KReduce) + res.comm.phase_bytes(Phase::FactorRows),
        res.comm.rounds() as u64 * per_round,
        "row traffic must cover exactly the non-split modes"
    );
    // Split-mode coupling costs F^2 per pair, independent of dims[split].
    let gram_per_round = ((3 * 3 - 3) * rank * rank * 8) as u64;
    assert_eq!(
        res.comm.phase_bytes(Phase::GramReduce),
        res.comm.rounds() as u64 * gram_per_round
    );
}

#[test]
fn single_shard_runs_are_silent() {
    for (name, t) in zoo() {
        let cfg = fixed_cfg(4, 3, 49);
        let res = shard_factorize(&t, &cfg, &ShardConfig::new(1)).unwrap();
        assert_eq!(res.comm.total_bytes(), 0, "{name}: bytes on a 1-shard run");
        assert_eq!(
            res.comm.total_messages(),
            0,
            "{name}: messages on a 1-shard run"
        );
        assert_eq!(res.est_comm_seconds, 0.0, "{name}: nonzero comm estimate");
    }
}
