//! Differential conformance: every MTTKRP kernel family against the
//! `testkit` COO oracle.
//!
//! Sweeps the legacy (plan-free) kernel, the planned kernel under both
//! forced strategies, and the one-CSF conflicting-update kernel, over
//! uniform and skewed tensors, 2–4 modes, every root mode, and rayon
//! pools of 1, 2 and 4 threads. A disagreement is shrunk to a minimal
//! failing tensor before being reported. Also covers the `MttkrpPlan`
//! edge cases: empty root slices, single-fiber roots, empty tensors and
//! plan/CSF pairing rejection.

use admm::constraints;
use aoadmm::mttkrp::{mttkrp_dense, mttkrp_dense_planned, mttkrp_reference};
use aoadmm::mttkrp_onecsf::mttkrp_one_csf;
use aoadmm::{
    Factorizer, IterationPlan, MttkrpPlan, PlanOptions, PlanStrategy, SparsityConfig, Structure,
    StructureChoice,
};
use splinalg::DMat;
use sptensor::{CooTensor, Csf};
use testkit::shrink::{describe, shrink_tensor};
use testkit::tolerance::{mats_close, KERNEL_ATOL, KERNEL_RTOL};
use testkit::{gen, oracle};

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

/// The tensor zoo every kernel sweep runs over: (dims, nnz, skew, seed).
fn zoo() -> Vec<CooTensor> {
    vec![
        gen::tensor(&[14, 11, 9], 600, 101),
        gen::skewed_tensor(&[40, 7, 25], 1_500, 3.0, 102),
        gen::tensor(&[30, 20], 400, 103),
        gen::tensor(&[8, 7, 6, 5], 300, 104),
        gen::skewed_tensor(&[6, 30, 40], 2_000, 2.0, 105), // few-root regime
    ]
}

/// Run `kernel` on `coo` and compare to the oracle; on mismatch, shrink
/// the tensor to a minimal reproducer and panic with it. The factor
/// matrices are regenerated from `(dims, fseed)` so the reproducer in
/// the message is self-contained.
fn assert_matches_oracle<K>(
    label: &str,
    coo: &CooTensor,
    mode: usize,
    rank: usize,
    fseed: u64,
    kernel: K,
) where
    K: Fn(&CooTensor, &[DMat], usize) -> DMat,
{
    let disagrees = |t: &CooTensor| -> bool {
        let factors = gen::factors(t.dims(), rank, -1.0, 1.0, fseed);
        let got = kernel(t, &factors, mode);
        let want = oracle::mttkrp(t, &factors, mode);
        !mats_close(&got, &want, KERNEL_RTOL, KERNEL_ATOL)
    };
    if disagrees(coo) {
        let minimal = shrink_tensor(coo, disagrees);
        panic!(
            "{label}: kernel/oracle mismatch (mode {mode}, rank {rank}, factor seed {fseed});\n\
             minimal reproducer: {}",
            describe(&minimal)
        );
    }
}

#[test]
fn legacy_dense_kernel_matches_oracle_all_modes_all_threads() {
    for (ti, coo) in zoo().iter().enumerate() {
        for mode in 0..coo.nmodes() {
            for threads in THREAD_SWEEP {
                let p = pool(threads);
                assert_matches_oracle(
                    &format!("legacy mttkrp_dense, tensor {ti}, {threads} threads"),
                    coo,
                    mode,
                    4,
                    200 + ti as u64,
                    |t, factors, mode| {
                        let csf = Csf::from_coo_rooted(t, mode).unwrap();
                        let mut out = DMat::zeros(t.dims()[mode], 4);
                        p.install(|| mttkrp_dense(&csf, factors, &mut out)).unwrap();
                        out
                    },
                );
            }
        }
    }
}

#[test]
fn planned_kernel_matches_oracle_under_both_strategies() {
    for (ti, coo) in zoo().iter().enumerate() {
        for mode in 0..coo.nmodes() {
            for strategy in [PlanStrategy::RootParallel, PlanStrategy::FiberPrivatized] {
                for plan_threads in [1, 4] {
                    for threads in THREAD_SWEEP {
                        let p = pool(threads);
                        assert_matches_oracle(
                            &format!(
                                "planned mttkrp ({}, plan threads {plan_threads}), tensor {ti}, {threads} threads",
                                strategy.name()
                            ),
                            coo,
                            mode,
                            3,
                            300 + ti as u64,
                            |t, factors, mode| {
                                let csf = Csf::from_coo_rooted(t, mode).unwrap();
                                let plan = MttkrpPlan::with_options(
                                    &csf,
                                    PlanOptions {
                                        threads: Some(plan_threads),
                                        force_strategy: Some(strategy),
                                    },
                                );
                                let mut out = DMat::zeros(t.dims()[mode], 3);
                                p.install(|| mttkrp_dense_planned(&csf, &plan, factors, &mut out))
                                    .unwrap();
                                out
                            },
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn one_csf_kernel_matches_oracle_for_every_root_target_pair() {
    let coo = gen::skewed_tensor(&[12, 15, 10], 900, 2.0, 111);
    for root in 0..3 {
        for target in 0..3 {
            for threads in THREAD_SWEEP {
                let p = pool(threads);
                assert_matches_oracle(
                    &format!("one-CSF mttkrp root {root} -> target {target}, {threads} threads"),
                    &coo,
                    target,
                    5,
                    400 + root as u64,
                    |t, factors, target| {
                        let csf = Csf::from_coo_rooted(t, root.min(t.nmodes() - 1)).unwrap();
                        let mut out = DMat::zeros(t.dims()[target], 5);
                        p.install(|| mttkrp_one_csf(&csf, factors, target, &mut out))
                            .unwrap();
                        out
                    },
                );
            }
        }
    }
}

#[test]
fn in_repo_reference_agrees_with_independent_oracle() {
    // Cross-check of the two reference implementations: the in-repo
    // `mttkrp_reference` and the testkit oracle were written
    // independently; agreement here hardens the base of the oracle
    // hierarchy.
    for (ti, coo) in zoo().iter().enumerate() {
        for mode in 0..coo.nmodes() {
            let factors = gen::factors(coo.dims(), 4, -1.0, 1.0, 500 + ti as u64);
            let got = mttkrp_reference(coo, &factors, mode).unwrap();
            let want = oracle::mttkrp(coo, &factors, mode);
            testkit::assert_mats_close(
                &format!("mttkrp_reference vs oracle, tensor {ti}, mode {mode}"),
                &got,
                &want,
                KERNEL_RTOL,
                KERNEL_ATOL,
            );
        }
    }
}

// ---- MttkrpPlan edge cases -------------------------------------------

#[test]
fn plan_rejects_mismatched_csf() {
    let a = gen::tensor(&[10, 8, 6], 200, 121);
    let b = gen::tensor(&[10, 8, 6], 150, 122); // same shape, different nnz
    let csf_a = Csf::from_coo_rooted(&a, 0).unwrap();
    let csf_b = Csf::from_coo_rooted(&b, 0).unwrap();
    let plan_a = MttkrpPlan::build(&csf_a);
    let factors = gen::factors(a.dims(), 3, -1.0, 1.0, 123);
    let mut out = DMat::zeros(10, 3);
    assert!(
        mttkrp_dense_planned(&csf_b, &plan_a, &factors, &mut out).is_err(),
        "plan built for csf A must be rejected on csf B"
    );
    // Same tensor, different root: also a mismatch.
    let csf_a1 = Csf::from_coo_rooted(&a, 1).unwrap();
    let mut out1 = DMat::zeros(8, 3);
    assert!(mttkrp_dense_planned(&csf_a1, &plan_a, &factors, &mut out1).is_err());
}

#[test]
fn empty_root_slices_produce_zero_rows() {
    // 28 of the 30 root slices have no nonzeros at all.
    let mut t = CooTensor::new(vec![30, 6, 6]).unwrap();
    let mut rng = testkit::TestRng::new(131);
    for _ in 0..80 {
        let root = if rng.next_f64() < 0.5 { 0 } else { 29 };
        t.push(
            &[root, rng.index(6) as u32, rng.index(6) as u32],
            rng.uniform(0.5, 1.5),
        )
        .unwrap();
    }
    t.dedup_sum();
    let factors = gen::factors(t.dims(), 4, -1.0, 1.0, 132);
    let want = oracle::mttkrp(&t, &factors, 0);
    let csf = Csf::from_coo_rooted(&t, 0).unwrap();
    for strategy in [PlanStrategy::RootParallel, PlanStrategy::FiberPrivatized] {
        let plan = MttkrpPlan::with_options(
            &csf,
            PlanOptions {
                threads: Some(4),
                force_strategy: Some(strategy),
            },
        );
        let mut out = DMat::zeros(30, 4);
        mttkrp_dense_planned(&csf, &plan, &factors, &mut out).unwrap();
        testkit::assert_mats_close(
            &format!("empty-slice tensor under {}", strategy.name()),
            &out,
            &want,
            KERNEL_RTOL,
            KERNEL_ATOL,
        );
        for row in 1..29 {
            assert!(out.row(row).iter().all(|&v| v == 0.0), "row {row} not zero");
        }
    }
}

#[test]
fn single_root_and_single_fiber_tensors_work_under_both_strategies() {
    // dim-1 root: one root subtree owns every nonzero (the worst case
    // for root-parallel balance, the motivating case for privatization).
    let one_root = gen::tensor(&[1, 12, 14], 250, 141);
    // Exactly one nonzero: one root, one fiber, one leaf.
    let mut single = CooTensor::new(vec![5, 5, 5]).unwrap();
    single.push(&[2, 3, 4], 1.25).unwrap();

    for (name, t) in [("dim-1 root", &one_root), ("single nonzero", &single)] {
        let factors = gen::factors(t.dims(), 3, -1.0, 1.0, 142);
        let want = oracle::mttkrp(t, &factors, 0);
        let csf = Csf::from_coo_rooted(t, 0).unwrap();
        for strategy in [PlanStrategy::RootParallel, PlanStrategy::FiberPrivatized] {
            let plan = MttkrpPlan::with_options(
                &csf,
                PlanOptions {
                    threads: Some(4),
                    force_strategy: Some(strategy),
                },
            );
            let mut out = DMat::zeros(t.dims()[0], 3);
            mttkrp_dense_planned(&csf, &plan, &factors, &mut out).unwrap();
            testkit::assert_mats_close(
                &format!("{name} under {}", strategy.name()),
                &out,
                &want,
                KERNEL_RTOL,
                KERNEL_ATOL,
            );
        }
    }
}

#[test]
fn empty_tensor_is_rejected_before_planning() {
    let empty = CooTensor::new(vec![4, 4, 4]).unwrap();
    assert!(
        Csf::from_coo_rooted(&empty, 0).is_err(),
        "CSF construction must reject an empty tensor (so no plan can exist for one)"
    );
}

// ---- Dimension-tree iteration plan -----------------------------------

/// Tensors the dimension-tree suite runs over: 3, 4 and 5 modes, with
/// uniform and skewed index distributions.
fn dimtree_zoo() -> Vec<CooTensor> {
    vec![
        gen::tensor(&[14, 11, 9], 600, 161),
        gen::skewed_tensor(&[40, 7, 25], 1_500, 3.0, 162),
        gen::tensor(&[8, 7, 6, 5], 400, 163),
        gen::skewed_tensor(&[12, 5, 9, 7], 900, 2.0, 164),
        gen::tensor(&[6, 5, 4, 5, 3], 350, 165),
    ]
}

#[test]
fn dimtree_matches_oracle_all_modes_all_orders_all_threads() {
    for (ti, coo) in dimtree_zoo().iter().enumerate() {
        let factors = gen::factors(coo.dims(), 4, -1.0, 1.0, 600 + ti as u64);
        for threads in THREAD_SWEEP {
            let p = pool(threads);
            p.install(|| {
                let mut plan = IterationPlan::build(coo).unwrap();
                // Two full AO-style sweeps: the first populates the slab
                // cache, the second serves from it.
                for sweep in 0..2 {
                    for mode in 0..coo.nmodes() {
                        let mut out = DMat::zeros(coo.dims()[mode], 4);
                        plan.mttkrp_dense(mode, &factors, &mut out).unwrap();
                        let want = oracle::mttkrp(coo, &factors, mode);
                        testkit::assert_mats_close(
                            &format!(
                                "dim-tree tensor {ti}, sweep {sweep}, mode {mode}, \
                                 {threads} threads"
                            ),
                            &out,
                            &want,
                            KERNEL_RTOL,
                            KERNEL_ATOL,
                        );
                    }
                }
                assert!(plan.total_hits() > 0, "second sweep must reuse slabs");
            });
        }
    }
}

#[test]
fn dimtree_leaf_read_variants_match_oracle() {
    // The sparsity-gated entry point reads the leaf factor through the
    // snapshot the policy chooses; force each representation in turn.
    let coo = gen::skewed_tensor(&[12, 15, 10, 6], 1_100, 2.0, 171);
    let factors = gen::factors(coo.dims(), 5, 0.0, 1.0, 172);
    for choice in [
        StructureChoice::Force(Structure::Dense),
        StructureChoice::Force(Structure::Csr),
        StructureChoice::Force(Structure::Hybrid),
    ] {
        // A sparsity-inducing constraint so the policy engages at all.
        let cfg = Factorizer::new(5)
            .constrain_all(constraints::nonneg())
            .sparsity(SparsityConfig {
                choice,
                ..Default::default()
            });
        let mut plan = IterationPlan::build(&coo).unwrap();
        for mode in 0..coo.nmodes() {
            let mut out = DMat::zeros(coo.dims()[mode], 5);
            plan.mttkrp(mode, &factors, &cfg, &mut out).unwrap();
            let want = oracle::mttkrp(&coo, &factors, mode);
            testkit::assert_mats_close(
                &format!("dim-tree leaf variant {choice:?}, mode {mode}"),
                &out,
                &want,
                KERNEL_RTOL,
                KERNEL_ATOL,
            );
        }
    }
}

#[test]
fn dimtree_stale_subtrees_recompute_after_single_mode_updates() {
    // AO-style single-mode updates: after each factor change (and its
    // note_factor_changed), every mode's MTTKRP must match the oracle on
    // the *current* factors — any stale slab that survives invalidation
    // shows up as a mismatch here.
    for (ti, coo) in dimtree_zoo().iter().enumerate() {
        let mut factors = gen::factors(coo.dims(), 3, -1.0, 1.0, 700 + ti as u64);
        let mut plan = IterationPlan::build(coo).unwrap();
        // Warm the cache.
        for mode in 0..coo.nmodes() {
            let mut out = DMat::zeros(coo.dims()[mode], 3);
            plan.mttkrp_dense(mode, &factors, &mut out).unwrap();
        }
        for changed in 0..coo.nmodes() {
            let fresh = gen::factors(
                coo.dims(),
                3,
                -1.0,
                1.0,
                710 + 7 * ti as u64 + changed as u64,
            );
            factors[changed] = fresh[changed].clone();
            plan.note_factor_changed(changed);
            for mode in 0..coo.nmodes() {
                let mut out = DMat::zeros(coo.dims()[mode], 3);
                plan.mttkrp_dense(mode, &factors, &mut out).unwrap();
                let want = oracle::mttkrp(coo, &factors, mode);
                testkit::assert_mats_close(
                    &format!("tensor {ti}: after updating mode {changed}, serving mode {mode}"),
                    &out,
                    &want,
                    KERNEL_RTOL,
                    KERNEL_ATOL,
                );
            }
        }
    }
}

#[test]
fn dimtree_is_bit_deterministic_across_pools() {
    // The plan freezes its chunk schedule and reduction order at build;
    // recomputing every slab under a different pool must land on
    // bit-identical output.
    let coo = gen::skewed_tensor(&[9, 22, 18, 6], 1_200, 2.5, 181);
    let factors = gen::factors(coo.dims(), 4, -1.0, 1.0, 182);
    let mut plan = pool(1).install(|| IterationPlan::build(&coo).unwrap());
    let mut base: Vec<DMat> = Vec::new();
    pool(1).install(|| {
        for mode in 0..coo.nmodes() {
            let mut out = DMat::zeros(coo.dims()[mode], 4);
            plan.mttkrp_dense(mode, &factors, &mut out).unwrap();
            base.push(out);
        }
    });
    for threads in THREAD_SWEEP {
        // Invalidate everything so each pool recomputes from scratch.
        for mode in 0..coo.nmodes() {
            plan.note_factor_changed(mode);
        }
        pool(threads).install(|| {
            for (mode, want) in base.iter().enumerate() {
                let mut out = DMat::zeros(coo.dims()[mode], 4);
                plan.mttkrp_dense(mode, &factors, &mut out).unwrap();
                assert_eq!(
                    want.max_abs_diff(&out),
                    0.0,
                    "dim-tree mode {mode} not bit-deterministic at {threads} threads"
                );
            }
        });
    }
}

#[test]
fn dimtree_rejects_matrices() {
    let coo = gen::tensor(&[30, 20], 400, 191);
    assert!(IterationPlan::build(&coo).is_err());
}

// ---- ALTO linearized substrate ----------------------------------------

use aoadmm::AltoTensor;
use splinalg::SimdLevel;

/// Tensors the ALTO suite runs over: 2–5 modes, uniform and skewed.
fn alto_zoo() -> Vec<CooTensor> {
    vec![
        gen::tensor(&[30, 20], 400, 801),
        gen::skewed_tensor(&[60, 9], 900, 2.5, 802),
        gen::tensor(&[14, 11, 9], 600, 803),
        gen::skewed_tensor(&[40, 7, 25], 1_500, 3.0, 804),
        gen::tensor(&[8, 7, 6, 5], 300, 805),
        gen::skewed_tensor(&[12, 5, 9, 7], 900, 2.0, 806),
        gen::tensor(&[6, 5, 4, 5, 3], 350, 807),
        gen::skewed_tensor(&[9, 4, 6, 5, 4], 700, 2.0, 808),
    ]
}

#[test]
fn alto_matches_oracle_all_modes_all_threads() {
    for (ti, coo) in alto_zoo().iter().enumerate() {
        for mode in 0..coo.nmodes() {
            for threads in THREAD_SWEEP {
                let p = pool(threads);
                assert_matches_oracle(
                    &format!("alto mttkrp, tensor {ti}, {threads} threads"),
                    coo,
                    mode,
                    4,
                    800 + ti as u64,
                    |t, factors, mode| {
                        let alto = AltoTensor::build(t).unwrap();
                        let mut out = DMat::zeros(t.dims()[mode], 4);
                        p.install(|| alto.mttkrp_into(mode, factors, &mut out))
                            .unwrap();
                        out
                    },
                );
            }
        }
    }
}

#[test]
fn alto_is_bit_deterministic_across_pools_and_kernel_paths() {
    // The block schedule and merge order are frozen at build, and every
    // SIMD path carries the same f64::mul_add contraction — so any pool
    // size crossed with any kernel path must land on identical bits.
    // (Levels the CPU cannot run silently degrade to scalar, which is
    // exactly the bit-exactness contract being checked.)
    let coo = gen::skewed_tensor(&[9, 22, 18, 6], 1_200, 2.5, 881);
    let factors = gen::factors(coo.dims(), 4, -1.0, 1.0, 882);
    let alto = AltoTensor::build(&coo).unwrap();
    let mut base: Vec<DMat> = Vec::new();
    pool(1).install(|| {
        for mode in 0..coo.nmodes() {
            let mut out = DMat::zeros(coo.dims()[mode], 4);
            alto.mttkrp_with_level(mode, &factors, &mut out, SimdLevel::Scalar)
                .unwrap();
            base.push(out);
        }
    });
    for threads in THREAD_SWEEP {
        for level in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512] {
            pool(threads).install(|| {
                for (mode, want) in base.iter().enumerate() {
                    let mut out = DMat::zeros(coo.dims()[mode], 4);
                    alto.mttkrp_with_level(mode, &factors, &mut out, level)
                        .unwrap();
                    assert_eq!(
                        want.max_abs_diff(&out),
                        0.0,
                        "alto mode {mode} not bit-identical at {threads} threads, {level:?}"
                    );
                }
            });
        }
    }
}

#[test]
fn alto_empty_and_degenerate_tensors_work() {
    // Empty tensor: zero output, no blocks to schedule.
    let empty = CooTensor::new(vec![4, 4, 4]).unwrap();
    let alto = AltoTensor::build(&empty).unwrap();
    let factors = gen::factors(&[4, 4, 4], 3, -1.0, 1.0, 891);
    let mut out = DMat::zeros(4, 3);
    alto.mttkrp_into(0, &factors, &mut out).unwrap();
    assert!(out.as_slice().iter().all(|&v| v == 0.0));

    // Single nonzero and dim-1 root slice.
    let mut single = CooTensor::new(vec![5, 1, 5]).unwrap();
    single.push(&[2, 0, 4], 1.25).unwrap();
    for mode in 0..3 {
        let factors = gen::factors(single.dims(), 3, -1.0, 1.0, 892);
        let alto = AltoTensor::build(&single).unwrap();
        let mut out = DMat::zeros(single.dims()[mode], 3);
        alto.mttkrp_into(mode, &factors, &mut out).unwrap();
        let want = oracle::mttkrp(&single, &factors, mode);
        testkit::assert_mats_close(
            &format!("single-nnz alto, mode {mode}"),
            &out,
            &want,
            KERNEL_RTOL,
            KERNEL_ATOL,
        );
    }
}

#[test]
fn plan_reuse_is_bit_deterministic_across_pools() {
    // The same plan must produce bit-identical output no matter which
    // pool executes it — the plan freezes the schedule and the reduction
    // order.
    let coo = gen::skewed_tensor(&[9, 22, 18], 1_200, 2.5, 151);
    let factors = gen::factors(coo.dims(), 4, -1.0, 1.0, 152);
    let csf = Csf::from_coo_rooted(&coo, 0).unwrap();
    for strategy in [PlanStrategy::RootParallel, PlanStrategy::FiberPrivatized] {
        let plan = MttkrpPlan::with_options(
            &csf,
            PlanOptions {
                threads: Some(4),
                force_strategy: Some(strategy),
            },
        );
        let mut base = DMat::zeros(9, 4);
        pool(1)
            .install(|| mttkrp_dense_planned(&csf, &plan, &factors, &mut base))
            .unwrap();
        for threads in THREAD_SWEEP {
            let mut out = DMat::zeros(9, 4);
            pool(threads)
                .install(|| mttkrp_dense_planned(&csf, &plan, &factors, &mut out))
                .unwrap();
            assert_eq!(
                base.max_abs_diff(&out),
                0.0,
                "{} not bit-deterministic at {threads} threads",
                strategy.name()
            );
        }
    }
}
