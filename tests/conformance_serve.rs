//! Serving conformance: the batched, pruned read path against
//! brute-force oracles, plus hot-swap coherence under concurrency.
//!
//! Four layers:
//!
//! 1. Micro-batched point reconstruction against `oracle::model_value`,
//!    **bit-exact**, issued concurrently from 1/2/4 query threads (the
//!    batched kernel groups its arithmetic exactly like the scalar
//!    loop, so no tolerance is needed).
//! 2. Pruned and brute-force top-K against `testkit::oracle::topk`:
//!    exact result **set and tie-stable order** across a sweep of
//!    shapes, ranks straddling the panel widths, free modes and k.
//! 3. Hot-swap coherence: a writer republishes epoch-constant models
//!    while readers query; every answer must factor as one single
//!    epoch (a torn mix of factor matrices cannot produce `F * e^3`).
//! 4. The full streaming loop: `StreamingFactorizer` publishing every
//!    warm refit through its sink while readers query — snapshots stay
//!    internally coherent, and the final published model is bitwise the
//!    factorizer's final state.

use aoadmm::KruskalModel;
use aoadmm_serve::{ModelRegistry, ServeEngine, TopKQuery};
use aoadmm_stream::{MergePolicy, StreamOp, StreamingConfig, StreamingFactorizer};
use splinalg::DMat;
use sptensor::Idx;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use testkit::gen;
use testkit::oracle;

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

fn engine_for(factors: Vec<DMat>) -> ServeEngine {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(KruskalModel::new(factors));
    ServeEngine::new(registry)
}

/// Deterministic coordinate for query `i` in a tensor of shape `dims`.
fn coord_for(i: u64, dims: &[usize]) -> Vec<Idx> {
    dims.iter()
        .enumerate()
        .map(|(m, &d)| ((i.wrapping_mul(2654435761).wrapping_add(m as u64 * 97)) % d as u64) as Idx)
        .collect()
}

#[test]
fn batched_point_queries_match_oracle_bitwise_across_thread_counts() {
    for &(dims, rank) in &[
        (&[9usize, 7, 8][..], 5usize),
        (&[40, 6, 11][..], 16),
        (&[13, 13][..], 8),
        (&[5, 4, 3, 6][..], 3),
    ] {
        let factors = gen::factors(dims, rank, -1.0, 1.0, 21);
        let engine = Arc::new(engine_for(factors.clone()));
        for &threads in &THREAD_SWEEP {
            std::thread::scope(|s| {
                for t in 0..threads {
                    let engine = Arc::clone(&engine);
                    let factors = &factors;
                    s.spawn(move || {
                        for i in 0..200u64 {
                            let coord = coord_for(i * threads as u64 + t as u64, dims);
                            let got = engine.predict(&coord).unwrap();
                            let want = oracle::model_value(factors, &coord);
                            assert_eq!(
                                got.to_bits(),
                                want.to_bits(),
                                "dims={dims:?} rank={rank} coord={coord:?}"
                            );
                        }
                    });
                }
            });
        }
    }
}

#[test]
fn bulk_predict_matches_oracle_bitwise() {
    for &(dims, rank) in &[(&[40usize, 6, 11][..], 16usize), (&[9, 7, 8][..], 5)] {
        let factors = gen::factors(dims, rank, -1.0, 1.0, 33);
        let engine = engine_for(factors.clone());
        // 75 queries: two full 32-row panels plus a remainder chunk.
        let coords: Vec<Vec<Idx>> = (0..75u64).map(|i| coord_for(i, dims)).collect();
        let mut values = Vec::new();
        let epoch = engine.predict_many_into(&coords, &mut values).unwrap();
        assert_eq!(epoch, 1);
        for (c, v) in coords.iter().zip(&values) {
            let want = oracle::model_value(&factors, c);
            assert_eq!(v.to_bits(), want.to_bits(), "dims={dims:?} coord={c:?}");
        }
    }
}

#[test]
fn topk_pruned_and_brute_match_oracle_exactly() {
    // Free-mode row counts straddle the 32-row panel and the 4-row
    // quad; ranks straddle the register widths.
    for &(dims, rank) in &[
        (&[33usize, 8, 9][..], 1usize),
        (&[5, 6, 7][..], 8),
        (&[64, 3, 50][..], 16),
        (&[100, 4, 4][..], 32),
        (&[31, 12][..], 6),
    ] {
        let factors = gen::factors(dims, rank, -1.0, 1.0, 77);
        let engine = engine_for(factors.clone());
        for free_mode in 0..dims.len() {
            for (a, anchor_seed) in [0u64, 5].iter().enumerate() {
                let anchor = coord_for(*anchor_seed + a as u64, dims);
                for k in [1usize, 5, dims[free_mode], dims[free_mode] + 10] {
                    let want = oracle::topk(&factors, free_mode, &anchor, k);
                    let q = TopKQuery {
                        free_mode,
                        anchor: anchor.clone(),
                        k,
                    };
                    for pruned in [true, false] {
                        let mut hits = Vec::new();
                        engine.topk_into_with(&q, pruned, &mut hits).unwrap();
                        let got: Vec<(u32, u64)> =
                            hits.iter().map(|&(id, s)| (id, s.to_bits())).collect();
                        let exact: Vec<(u32, u64)> =
                            want.iter().map(|&(id, s)| (id, s.to_bits())).collect();
                        assert_eq!(
                            got, exact,
                            "dims={dims:?} rank={rank} free={free_mode} k={k} pruned={pruned}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn topk_tie_order_is_stable_with_duplicate_rows() {
    // Duplicate free-mode rows force score ties; order must be by
    // ascending row id in both scan strategies, matching the oracle.
    let mut free = DMat::zeros(12, 2);
    for i in 0..12 {
        let v = [(3.0, 1.0), (1.0, 2.0), (3.0, 1.0)][i % 3];
        free.row_mut(i).copy_from_slice(&[v.0, v.1]);
    }
    let fixed = DMat::from_vec(3, 2, vec![0.5, 1.0, -0.25, 0.75, 1.0, 0.0]).unwrap();
    let factors = vec![free, fixed];
    let engine = engine_for(factors.clone());
    for anchor_row in 0..3u32 {
        for k in [1usize, 4, 9, 12] {
            let anchor = vec![0, anchor_row];
            let want = oracle::topk(&factors, 0, &anchor, k);
            for pruned in [true, false] {
                let mut hits = Vec::new();
                engine
                    .topk_into_with(
                        &TopKQuery {
                            free_mode: 0,
                            anchor: anchor.clone(),
                            k,
                        },
                        pruned,
                        &mut hits,
                    )
                    .unwrap();
                let got: Vec<(u32, f64)> = hits;
                assert_eq!(got, want, "anchor={anchor_row} k={k} pruned={pruned}");
            }
        }
    }
}

/// An all-constant model: every entry of every factor is `v`. A point
/// query then scores exactly `rank * v^nmodes`; any torn mix of two
/// epochs `a != b` would score `rank * a^i * b^(3-i)`, which for the
/// integer epochs used below is never a perfect value of the same form.
fn constant_model(dims: &[usize], rank: usize, v: f64) -> KruskalModel {
    KruskalModel::new(
        dims.iter()
            .map(|&d| {
                let mut f = DMat::zeros(d, rank);
                f.fill(v);
                f
            })
            .collect(),
    )
}

#[test]
fn hot_swap_readers_never_observe_a_torn_model() {
    let dims = [40usize, 30, 20];
    let rank = 8;
    const EPOCHS: u64 = 60;
    let registry = Arc::new(ModelRegistry::new());
    // Epoch e carries value e in every entry (registry epochs start at
    // 1 and count up with each publish, so value == epoch).
    registry.publish(constant_model(&dims, rank, 1.0));
    let engine = Arc::new(ServeEngine::new(Arc::clone(&registry)));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                for e in 2..=EPOCHS {
                    let got = registry.publish(constant_model(&dims, rank, e as f64));
                    assert_eq!(got, e);
                }
                stop.store(true, Ordering::Release);
            });
        }
        for reader in 0..3 {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut last_epoch = 0u64;
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) || i == 0 {
                    i += 1;
                    if reader < 2 {
                        let coord = coord_for(i, &dims);
                        let v = engine.predict(&coord).unwrap();
                        // v must equal rank * e^3 for a single integer
                        // epoch e — exact in f64 for these magnitudes.
                        let e = (v / rank as f64).cbrt().round();
                        assert!(
                            e >= 1.0 && e <= EPOCHS as f64 && v == rank as f64 * e * e * e,
                            "torn read: value {v} is not rank * e^3 for any epoch"
                        );
                        assert!(
                            e as u64 >= last_epoch,
                            "epoch went backwards: {e} after {last_epoch}"
                        );
                        last_epoch = e as u64;
                    } else {
                        let mut hits = Vec::new();
                        let epoch = engine
                            .topk_into(
                                &TopKQuery {
                                    free_mode: 0,
                                    anchor: vec![0, 3, 4],
                                    k: 5,
                                },
                                &mut hits,
                            )
                            .unwrap();
                        let e = epoch as f64;
                        // All rows tie; ids 0..5 by tie order, every
                        // score exactly rank * e^3 of the *reported*
                        // epoch.
                        let expect: Vec<(Idx, f64)> =
                            (0..5).map(|id| (id, rank as f64 * e * e * e)).collect();
                        assert_eq!(hits, expect, "torn top-K at epoch {epoch}");
                        assert!(epoch >= last_epoch);
                        last_epoch = epoch;
                    }
                }
            });
        }
    });
    assert_eq!(registry.epoch(), EPOCHS);
}

#[test]
fn streaming_refits_hot_swap_coherently_under_live_queries() {
    let dims = [10usize, 9, 8];
    let base = gen::tensor(&dims, 220, 3);
    let cfg = StreamingConfig::new(
        aoadmm::Factorizer::new(4)
            .seed(7)
            .max_outer(30)
            .tolerance(1e-7),
    )
    .refit_outer(4)
    .policy(MergePolicy::never());
    let mut sf = StreamingFactorizer::new(base, cfg).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    sf.attach_sink(Arc::clone(&registry) as Arc<dyn aoadmm_stream::ModelSink>);
    let engine = Arc::new(ServeEngine::new(Arc::clone(&registry)));
    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));

    const BATCHES: usize = 12;
    std::thread::scope(|s| {
        for t in 0..2 {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            s.spawn(move || {
                let mut i = t as u64;
                let mut hits = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    i += 1;
                    let snap = engine.snapshot().expect("published on attach");
                    // One coherent epoch: rank agrees across factors by
                    // construction of KruskalModel; dims must be the
                    // base shape (this run never grows a mode).
                    assert_eq!(snap.dims(), &dims);
                    assert_eq!(snap.rank(), 4);
                    let coord = coord_for(i, &dims);
                    let v = engine.predict(&coord).unwrap();
                    assert!(v.is_finite());
                    let epoch = engine
                        .topk_into(
                            &TopKQuery {
                                free_mode: 1,
                                anchor: coord.clone(),
                                k: 3,
                            },
                            &mut hits,
                        )
                        .unwrap();
                    assert!(epoch >= 1 && epoch <= 1 + BATCHES as u64);
                    assert!(hits.iter().all(|h| h.1.is_finite()));
                    queries.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for b in 0..BATCHES {
            sf.push_batch(&[
                StreamOp::Add {
                    coord: vec![(b % 10) as Idx, (b % 9) as Idx, (b % 8) as Idx],
                    val: 0.3,
                },
                StreamOp::Set {
                    coord: vec![((b + 3) % 10) as Idx, 0, 1],
                    val: 1.0,
                },
            ])
            .unwrap();
        }
        stop.store(true, Ordering::Release);
    });

    assert!(queries.load(Ordering::Relaxed) > 0);
    // Attach published once, then one publish per batch.
    assert_eq!(registry.epoch(), 1 + BATCHES as u64);
    // The served model is bitwise the factorizer's final state.
    let snap = registry.snapshot().unwrap();
    for (m, fac) in sf.factors().iter().enumerate() {
        assert_eq!(snap.model().factor(m).max_abs_diff(fac), 0.0);
    }
}
