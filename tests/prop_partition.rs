//! Property sweeps for the shard partitioning layer (seeded
//! [`testkit::TestRng`] loops; inputs are reproducible from the seeds
//! embedded below).
//!
//! Properties:
//!
//! * **Bijection** — splitting a tensor over shards is a partition of
//!   its nonzeros: every (coordinate, value) pair lands in exactly one
//!   local, owned by the shard the partition says owns it, and the
//!   shard-ordered concatenation is a permutation of the input.
//! * **Reindex round-trip** — a reindexed `extract_mode_range` followed
//!   by `rebase_mode` is exactly the non-reindexed extraction.
//! * **Balance** — the greedy nnz split respects the documented bound
//!   `max_shard_nnz <= ceil(nnz/S) + max_slice_nnz - 1`.
//! * **Ownership** — ranges tile every mode; `owner` inverts `owned`.

use aoadmm_distsim::Partition;
use sptensor::CooTensor;
use testkit::{gen, TestRng};

/// A random test tensor: 3-5 modes, modest dims, optional skew.
fn random_tensor(rng: &mut TestRng) -> CooTensor {
    let nmodes = 3 + rng.index(3);
    let dims: Vec<usize> = (0..nmodes).map(|_| 3 + rng.index(28)).collect();
    let cells: usize = dims.iter().product();
    let nnz = 1 + rng.index(cells.min(1500));
    let seed = rng.next_u64();
    if rng.next_f64() < 0.5 {
        gen::tensor(&dims, nnz, seed)
    } else {
        gen::skewed_tensor(&dims, nnz, rng.uniform(0.2, 1.4), seed)
    }
}

/// Canonical multiset view of a tensor's nonzeros.
fn nonzero_multiset(t: &CooTensor) -> Vec<(Vec<u32>, u64)> {
    let mut v: Vec<(Vec<u32>, u64)> = t
        .nonzeros()
        .map(|(coord, val)| (coord, val.to_bits()))
        .collect();
    v.sort();
    v
}

#[test]
fn split_is_a_bijection_on_nonzeros() {
    let mut rng = TestRng::new(0xB17E);
    for _trial in 0..25 {
        let t = random_tensor(&mut rng);
        let s = 1 + rng.index(6);
        let part = Partition::build(&t, s).unwrap();
        let locals = part.split_tensor(&t);
        assert_eq!(locals.len(), s);

        // Each shard holds exactly the nonzeros it owns...
        let split = part.split_mode();
        let mut merged = Vec::new();
        for (p, local) in locals.iter().enumerate() {
            assert_eq!(local.dims(), t.dims(), "locals keep global dims");
            for &i in local.mode_inds(split) {
                assert_eq!(
                    part.owner(split, i as usize),
                    p,
                    "shard {p} holds a nonzero it does not own"
                );
            }
            merged.extend(nonzero_multiset(local));
        }
        // ...and together they are a permutation of the input.
        merged.sort();
        assert_eq!(
            merged,
            nonzero_multiset(&t),
            "S={s}: locals are not a permutation of the input"
        );
    }
}

#[test]
fn reindexed_extraction_round_trips_through_rebase() {
    let mut rng = TestRng::new(0x5EED);
    for _trial in 0..25 {
        let t = random_tensor(&mut rng);
        let mode = rng.index(t.nmodes());
        let d = t.dims()[mode];
        let start = rng.index(d);
        let end = start + 1 + rng.index(d - start);

        let mut local = t
            .extract_mode_range(mode, start..end, true)
            .expect("reindexed extraction");
        assert_eq!(local.dims()[mode], end - start);
        local.rebase_mode(mode, start, d).expect("rebase");

        let global_view = t
            .extract_mode_range(mode, start..end, false)
            .expect("global-dims extraction");
        assert_eq!(local.dims(), global_view.dims());
        assert_eq!(
            nonzero_multiset(&local),
            nonzero_multiset(&global_view),
            "mode {mode} range {start}..{end}"
        );
        // Order is preserved too, not just the multiset.
        for m in 0..t.nmodes() {
            assert_eq!(local.mode_inds(m), global_view.mode_inds(m));
        }
    }
}

#[test]
fn greedy_split_respects_documented_balance_bound() {
    let mut rng = TestRng::new(0xBA1A);
    for _trial in 0..25 {
        let t = random_tensor(&mut rng);
        for s in [1usize, 2, 3, 5, 8] {
            let part = Partition::build(&t, s).unwrap();
            let locals = part.split_tensor(&t);
            let max = locals.iter().map(CooTensor::nnz).max().unwrap();
            let bound = part.nnz_balance_bound(&t);
            assert!(
                max <= bound,
                "S={s}: max shard nnz {max} exceeds bound {bound} \
                 (nnz {}, dims {:?})",
                t.nnz(),
                t.dims()
            );
        }
    }
}

#[test]
fn ranges_tile_every_mode_and_owner_inverts_owned() {
    let mut rng = TestRng::new(0x0113);
    for _trial in 0..25 {
        let t = random_tensor(&mut rng);
        let s = 1 + rng.index(7);
        let part = Partition::build(&t, s).unwrap();
        for m in 0..t.nmodes() {
            let mut cursor = 0usize;
            for p in 0..s {
                let r = part.owned(m, p);
                assert_eq!(r.start, cursor, "mode {m} shard {p}: gap or overlap");
                cursor = r.end;
            }
            assert_eq!(cursor, t.dims()[m], "mode {m}: not fully covered");
            // Spot-check owner() against the ranges on random rows.
            for _ in 0..8 {
                let i = rng.index(t.dims()[m]);
                let p = part.owner(m, i);
                assert!(part.owned(m, p).contains(&i));
            }
        }
    }
}
