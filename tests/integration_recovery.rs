//! Ground-truth recovery: factorize fully observed low-rank tensors and
//! score the result against the planted factors with the factor match
//! score (FMS).
//!
//! Recovery needs a *complete* tensor (a sparse sample re-interprets
//! unobserved cells as zeros, which biases any fit away from the truth)
//! and reasonably incoherent planted components, so the truth factors
//! here have disjoint-ish sparse supports.

use admm::constraints;
use aoadmm::model_ops::{arrange, factor_match_score, normalize_columns};
use aoadmm::{Factorizer, KruskalModel};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use splinalg::DMat;
use sptensor::CooTensor;

/// Non-negative truth factors whose components have staggered sparse
/// supports (identifiable, unlike fully dense positive columns).
fn truth_factors(dims: &[usize], rank: usize, seed: u64) -> Vec<DMat> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    dims.iter()
        .map(|&d| {
            let mut m = DMat::zeros(d, rank);
            for i in 0..d {
                for c in 0..rank {
                    // Component c is supported on roughly 1/rank of the
                    // rows plus a little overlap.
                    let home = (i * rank / d).min(rank - 1);
                    if home == c || rng.gen::<f64>() < 0.15 {
                        m.set(i, c, rng.gen_range(0.3..1.0));
                    }
                }
            }
            m
        })
        .collect()
}

/// Every cell of the truth model plus Gaussian-ish noise.
fn full_tensor(truth: &KruskalModel, noise: f64, seed: u64) -> CooTensor {
    let dims: Vec<usize> = truth.factors().iter().map(|f| f.nrows()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = CooTensor::new(dims.clone()).unwrap();
    let mut coord = vec![0u32; 3];
    for i in 0..dims[0] as u32 {
        for j in 0..dims[1] as u32 {
            for k in 0..dims[2] as u32 {
                coord[0] = i;
                coord[1] = j;
                coord[2] = k;
                let v =
                    truth.value_at(&coord) + noise * (rng.gen::<f64>() + rng.gen::<f64>() - 1.0);
                if v.abs() > 1e-12 {
                    t.push(&coord, v).unwrap();
                }
            }
        }
    }
    t
}

#[test]
fn recovers_planted_factors_on_complete_tensor() {
    let dims = [24usize, 21, 18];
    let truth = KruskalModel::new(truth_factors(&dims, 3, 71));
    let tensor = full_tensor(&truth, 0.01, 72);

    let res = Factorizer::new(3)
        .constrain_all(constraints::nonneg())
        .max_outer(250)
        .tolerance(1e-10)
        .seed(5)
        .factorize(&tensor)
        .unwrap();

    let fms = factor_match_score(&res.model, &truth).unwrap();
    assert!(fms > 0.85, "factor match score {fms}");
    assert!(
        res.trace.final_error < 0.2,
        "error {}",
        res.trace.final_error
    );
}

#[test]
fn higher_noise_lowers_match_score() {
    let dims = [20usize, 20, 20];
    let truth = KruskalModel::new(truth_factors(&dims, 3, 73));
    let score = |noise: f64| {
        let tensor = full_tensor(&truth, noise, 74);
        let res = Factorizer::new(3)
            .constrain_all(constraints::nonneg())
            .max_outer(150)
            .tolerance(1e-9)
            .seed(6)
            .factorize(&tensor)
            .unwrap();
        factor_match_score(&res.model, &truth).unwrap()
    };
    let clean = score(0.005);
    let noisy = score(2.0);
    assert!(clean > 0.8, "clean FMS {clean}");
    assert!(
        clean > noisy,
        "clean FMS {clean} should beat noisy FMS {noisy}"
    );
}

#[test]
fn normalization_and_arrangement_preserve_fms() {
    let dims = [15usize, 12, 10];
    let truth = KruskalModel::new(truth_factors(&dims, 4, 75));
    let tensor = full_tensor(&truth, 0.05, 76);
    let res = Factorizer::new(4)
        .constrain_all(constraints::nonneg())
        .max_outer(30)
        .seed(7)
        .factorize(&tensor)
        .unwrap();

    let direct = factor_match_score(&res.model, &truth).unwrap();
    let canonical = arrange(&normalize_columns(&res.model)).into_denormalized();
    let canonicalized = factor_match_score(&canonical, &truth).unwrap();
    assert!(
        (direct - canonicalized).abs() < 1e-9,
        "{direct} vs {canonicalized}"
    );
}
