//! Ground-truth recovery: factorize fully observed low-rank tensors and
//! score the result against the planted factors with the factor match
//! score (FMS).
//!
//! Recovery needs a *complete* tensor (a sparse sample re-interprets
//! unobserved cells as zeros, which biases any fit away from the truth)
//! and reasonably incoherent planted components, so the truth factors
//! here have disjoint-ish sparse supports.

use admm::constraints;
use aoadmm::model_ops::{arrange, factor_match_score, normalize_columns};
use aoadmm::{Factorizer, KruskalModel};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use splinalg::DMat;
use sptensor::CooTensor;

/// Non-negative truth factors whose components have staggered sparse
/// supports (identifiable, unlike fully dense positive columns).
fn truth_factors(dims: &[usize], rank: usize, seed: u64) -> Vec<DMat> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    dims.iter()
        .map(|&d| {
            let mut m = DMat::zeros(d, rank);
            for i in 0..d {
                for c in 0..rank {
                    // Component c is supported on roughly 1/rank of the
                    // rows plus a little overlap.
                    let home = (i * rank / d).min(rank - 1);
                    if home == c || rng.gen::<f64>() < 0.15 {
                        m.set(i, c, rng.gen_range(0.3..1.0));
                    }
                }
            }
            m
        })
        .collect()
}

/// Every cell of the truth model plus Gaussian-ish noise.
fn full_tensor(truth: &KruskalModel, noise: f64, seed: u64) -> CooTensor {
    let dims: Vec<usize> = truth.factors().iter().map(|f| f.nrows()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = CooTensor::new(dims.clone()).unwrap();
    let mut coord = vec![0u32; 3];
    for i in 0..dims[0] as u32 {
        for j in 0..dims[1] as u32 {
            for k in 0..dims[2] as u32 {
                coord[0] = i;
                coord[1] = j;
                coord[2] = k;
                let v =
                    truth.value_at(&coord) + noise * (rng.gen::<f64>() + rng.gen::<f64>() - 1.0);
                if v.abs() > 1e-12 {
                    t.push(&coord, v).unwrap();
                }
            }
        }
    }
    t
}

#[test]
fn recovers_planted_factors_on_complete_tensor() {
    let dims = [24usize, 21, 18];
    let truth = KruskalModel::new(truth_factors(&dims, 3, 71));
    let tensor = full_tensor(&truth, 0.01, 72);

    let res = Factorizer::new(3)
        .constrain_all(constraints::nonneg())
        .max_outer(250)
        .tolerance(1e-10)
        .seed(5)
        .factorize(&tensor)
        .unwrap();

    let fms = factor_match_score(&res.model, &truth).unwrap();
    assert!(fms > 0.85, "factor match score {fms}");
    assert!(
        res.trace.final_error < 0.2,
        "error {}",
        res.trace.final_error
    );
}

#[test]
fn higher_noise_lowers_match_score() {
    let dims = [20usize, 20, 20];
    let truth = KruskalModel::new(truth_factors(&dims, 3, 73));
    let score = |noise: f64| {
        let tensor = full_tensor(&truth, noise, 74);
        let res = Factorizer::new(3)
            .constrain_all(constraints::nonneg())
            .max_outer(150)
            .tolerance(1e-9)
            .seed(6)
            .factorize(&tensor)
            .unwrap();
        factor_match_score(&res.model, &truth).unwrap()
    };
    let clean = score(0.005);
    let noisy = score(2.0);
    assert!(clean > 0.8, "clean FMS {clean}");
    assert!(
        clean > noisy,
        "clean FMS {clean} should beat noisy FMS {noisy}"
    );
}

/// Checkpoint/restart across the *sharded* engine: a run interrupted
/// partway, persisted to disk through the standard checkpoint format,
/// and resumed sharded must land exactly where the uninterrupted
/// sharded run lands — and the full run must still recover the planted
/// factors.
///
/// Bit-exactness across the disk round trip relies on the model format
/// writing 17 significant digits (lossless f64), on the
/// deterministic-reduction discipline (zero inner tolerance, fixed
/// inner iteration count) making the trajectory independent of where it
/// was cut, and on the engine reconstructing Gram matrices from the
/// checkpointed factors with the same frozen shard-ordered merge the
/// live run uses (the on-disk format carries only model + duals).
///
/// The exactness has a measured boundary: (model, duals, grams) pins
/// the trajectory bitwise over short resumes (proven here at 3+3
/// rounds), but long resumes accumulate last-bit rounding drift
/// (~3e-11 over 20+20 rounds at S=3).  The shared-memory
/// `factorize_warm` oracle drifts *worse* (~5e-9) on the same problem,
/// so the second assertion bounds the sharded drift well below the
/// oracle's own.
#[test]
fn sharded_run_recovers_through_checkpoint_restart() {
    use admm::AdmmConfig;
    use aoadmm::checkpoint::Checkpoint;
    use aoadmm_distsim::{shard_factorize, shard_factorize_warm, ShardConfig};

    let dims = [24usize, 21, 18];
    let truth = KruskalModel::new(truth_factors(&dims, 3, 81));
    let tensor = full_tensor(&truth, 0.01, 82);

    let mut admm_cfg = AdmmConfig::blocked(50);
    admm_cfg.tol = 0.0;
    admm_cfg.max_inner = 8;
    let cfg = |outer: usize| {
        Factorizer::new(3)
            .constrain_all(constraints::nonneg())
            .admm(admm_cfg.clone())
            .max_outer(outer)
            .tolerance(0.0)
            .seed(15)
    };
    let sc = ShardConfig::new(3);

    // Bit-exact restart: 6 uninterrupted rounds vs 3 rounds, a disk
    // checkpoint round trip, and 3 resumed rounds.  Grams are NOT
    // passed — the engine must rebuild them from the reloaded factors.
    let full6 = shard_factorize(&tensor, &cfg(6), &sc).unwrap();
    let half3 = shard_factorize(&tensor, &cfg(3), &sc).unwrap();
    let path = std::env::temp_dir().join("aoadmm_sharded_recovery.ckpt");
    Checkpoint {
        model: half3.model,
        duals: half3.duals,
    }
    .save(&path)
    .unwrap();
    let ck = Checkpoint::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let resumed3 =
        shard_factorize_warm(&tensor, &cfg(3), &sc, ck.model, Some(ck.duals), None).unwrap();

    assert_eq!(
        full6.trace.final_error.to_bits(),
        resumed3.trace.final_error.to_bits(),
        "resumed sharded run diverged: {} vs {}",
        full6.trace.final_error,
        resumed3.trace.final_error
    );
    for m in 0..3 {
        assert_eq!(
            full6.model.factor(m).max_abs_diff(resumed3.model.factor(m)),
            0.0,
            "mode {m}: factors differ after checkpoint restart"
        );
    }

    // Long-horizon restart: 40 uninterrupted rounds vs 20 + 20 resumed.
    // Drift over this horizon is last-bit rounding accumulation, orders
    // of magnitude below the shared-memory oracle's own resume drift.
    let full = shard_factorize(&tensor, &cfg(40), &sc).unwrap();
    let half = shard_factorize(&tensor, &cfg(20), &sc).unwrap();
    let resumed = shard_factorize_warm(
        &tensor,
        &cfg(20),
        &sc,
        half.model,
        Some(half.duals),
        Some(half.grams),
    )
    .unwrap();
    for m in 0..3 {
        let d = full.model.factor(m).max_abs_diff(resumed.model.factor(m));
        assert!(
            d < 1e-9,
            "mode {m}: long-horizon restart drift {d:e} exceeds bound"
        );
    }

    // And the recovered model is still a real recovery, not just
    // self-consistent.
    let fms = factor_match_score(&resumed.model, &truth).unwrap();
    assert!(fms > 0.8, "factor match score after restart: {fms}");
}

#[test]
fn normalization_and_arrangement_preserve_fms() {
    let dims = [15usize, 12, 10];
    let truth = KruskalModel::new(truth_factors(&dims, 4, 75));
    let tensor = full_tensor(&truth, 0.05, 76);
    let res = Factorizer::new(4)
        .constrain_all(constraints::nonneg())
        .max_outer(30)
        .seed(7)
        .factorize(&tensor)
        .unwrap();

    let direct = factor_match_score(&res.model, &truth).unwrap();
    let canonical = arrange(&normalize_columns(&res.model)).into_denormalized();
    let canonicalized = factor_match_score(&canonical, &truth).unwrap();
    assert!(
        (direct - canonicalized).abs() < 1e-9,
        "{direct} vs {canonicalized}"
    );
}
